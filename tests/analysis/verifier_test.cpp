// Module-level (`wf.*`) verifier rules: each check fires on a targeted
// corruption and stays silent on well-formed input.
#include "analysis/verifier.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "asmkit/assembler.hpp"
#include "isa/extdef.hpp"

namespace t1000 {
namespace {

bool has_rule(const VerifyReport& report, std::string_view rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule_id == rule; });
}

Program clean_program() {
  return assemble(R"(
        li $t1, 100
        li $t0, 0
  loop: addiu $t0, $t0, 1
        slti $at, $t0, 8
        bne $at, $zero, loop
        halt
  )");
}

TEST(VerifyModule, CleanProgramHasNoDiagnostics) {
  const VerifyReport report = verify_module(clean_program(), nullptr);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
  EXPECT_EQ(report.summary(), "ok");
}

TEST(VerifyModule, BranchTargetPastEndIsError) {
  Program p = clean_program();
  p.text[4].imm = p.size() + 1;
  const VerifyReport report = verify_module(p, nullptr);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "wf.branch-target")) << report.summary();
}

TEST(VerifyModule, BranchTargetAtSizeIsCleanHalt) {
  // index_map maps deleted tail positions to size; the executor halts there.
  Program p = clean_program();
  p.text[4].imm = p.size();
  EXPECT_TRUE(verify_module(p, nullptr).ok());
}

TEST(VerifyModule, NegativeBranchTargetIsError) {
  Program p = clean_program();
  p.text[4].imm = -1;
  EXPECT_TRUE(has_rule(verify_module(p, nullptr), "wf.branch-target"));
}

TEST(VerifyModule, RegisterFieldOutOfRangeIsError) {
  Program p = clean_program();
  p.text[2].rs = kNumRegs;
  EXPECT_TRUE(has_rule(verify_module(p, nullptr), "wf.reg-range"));
}

TEST(VerifyModule, NonExtCarryingConfIsError) {
  Program p = clean_program();
  p.text[2].conf = 3;
  EXPECT_TRUE(has_rule(verify_module(p, nullptr), "wf.conf-ref"));
}

TEST(VerifyModule, ExtWithoutTableIsError) {
  Program p = clean_program();
  p.text[2] = make_ext(8, 9, 10, 0);
  EXPECT_TRUE(has_rule(verify_module(p, nullptr), "wf.conf-ref"));
}

TEST(VerifyModule, ExtConfOutsideTableIsError) {
  Program p = clean_program();
  p.text[2] = make_ext(8, 9, 10, 5);
  ExtInstTable table;
  table.intern(ExtInstDef(
      1, {MicroOp{Opcode::kSll, /*dst=*/2, /*a=*/0, /*b=*/-1, /*imm=*/1}}));
  EXPECT_TRUE(has_rule(verify_module(p, &table), "wf.conf-ref"));
  p.text[2].conf = 0;
  EXPECT_TRUE(verify_module(p, &table).ok());
}

TEST(VerifyModule, TextSymbolOutOfRangeIsError) {
  Program p = clean_program();
  p.text_symbols["ghost"] = p.size() + 2;
  EXPECT_TRUE(has_rule(verify_module(p, nullptr), "wf.text-symbol"));
}

TEST(VerifyModule, ReadOfNeverDefinedRegisterWarns) {
  const Program p = assemble(R"(
        xor $t1, $t2, $t2
        halt
  )");
  const VerifyReport report = verify_module(p, nullptr);
  EXPECT_TRUE(report.ok());  // warning severity, not an error
  EXPECT_EQ(report.warnings(), 1);
  EXPECT_TRUE(has_rule(report, "wf.use-before-def"));
}

TEST(VerifyModule, EntryDefinedRegistersDoNotWarn) {
  // $zero, $sp and $ra carry defined values at entry.
  const Program p = assemble(R"(
        addiu $t0, $sp, -8
        addu $t1, $ra, $zero
        halt
  )");
  EXPECT_TRUE(verify_module(p, nullptr).diagnostics.empty());
}

TEST(VerifyModule, DefinedOnOnlyOnePathWarns) {
  // $t1 is defined on the fall-through path but not on the taken path.
  const Program p = assemble(R"(
        li $t0, 1
        beq $t0, $zero, join
        li $t1, 7
  join: addu $v0, $t1, $t0
        halt
  )");
  const VerifyReport report = verify_module(p, nullptr);
  EXPECT_EQ(report.warnings(), 1);
  EXPECT_TRUE(has_rule(report, "wf.use-before-def"));
}

TEST(VerifyModule, DefinedOnAllPathsDoesNotWarn) {
  const Program p = assemble(R"(
        li $t0, 1
        beq $t0, $zero, other
        li $t1, 7
        j join
  other: li $t1, 9
  join: addu $v0, $t1, $t0
        halt
  )");
  EXPECT_TRUE(verify_module(p, nullptr).diagnostics.empty());
}

TEST(VerifyModule, UnreachableCodeIsNotAnalyzedForDefs) {
  // The read at `dead` is never executed; no warning.
  const Program p = assemble(R"(
        halt
  dead: addu $v0, $t1, $t2
        halt
  )");
  EXPECT_TRUE(verify_module(p, nullptr).diagnostics.empty());
}

TEST(VerifyModule, CallDefinesEverything) {
  // Interprocedural writes are not tracked: jal conservatively defines all.
  const Program p = assemble(R"(
        jal sub
        addu $v0, $t5, $t6
        halt
  sub:  jr $ra
  )");
  EXPECT_TRUE(verify_module(p, nullptr).diagnostics.empty());
}

TEST(VerifyReportJson, SerializesDeterministicFieldsOnly) {
  Program p = clean_program();
  p.text[4].imm = -1;
  const VerifyReport report = verify_module(p, nullptr);
  const Json j = to_json(report);
  EXPECT_FALSE(j.at("ok").as_bool());
  EXPECT_EQ(j.at("errors").as_int(), 1);
  EXPECT_EQ(j.at("diagnostics").size(), 1u);
  EXPECT_EQ(j.at("diagnostics").items()[0].at("rule_id").as_string(),
            "wf.branch-target");
  // Timing is serialized separately so reports diff byte-identically.
  EXPECT_EQ(j.find("timing"), nullptr);
}

}  // namespace
}  // namespace t1000
