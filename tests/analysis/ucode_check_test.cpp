// The `ucode.*` rule family (analysis/ucode_check.hpp): every structural
// invariant of a decoded uop stream, proven enforceable by corrupting a
// healthy stream one invariant at a time and watching the matching rule —
// and only a matching diagnostic — fire.
#include "analysis/ucode_check.hpp"

#include <gtest/gtest.h>

#include <string>

#include "asmkit/assembler.hpp"
#include "isa/extdef.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

Program loop_program() {
  return assemble(R"(
        la $t0, buf
        li $s0, 10
  loop: sw $s0, 0($t0)
        lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 16
  )");
}

// True when `report` contains at least one diagnostic with `rule_id`.
bool fired(const VerifyReport& report, const std::string& rule_id) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule_id == rule_id) return true;
  }
  return false;
}

// Index of the first instruction with opcode `op` (pseudo-instructions in
// the assembly expand, so positions are found, not assumed).
std::size_t find_op(const Program& p, Opcode op) {
  for (std::size_t i = 0; i < p.text.size(); ++i) {
    if (p.text[i].op == op) return i;
  }
  ADD_FAILURE() << "no " << int(op) << " in program";
  return 0;
}

TEST(UcodeCheck, CleanDecodeHasNoDiagnostics) {
  const Program p = loop_program();
  const VerifyReport report = verify_ucode(UopProgram::build(p, nullptr));
  EXPECT_EQ(report.errors(), 0);
  EXPECT_EQ(report.warnings(), 0);
}

TEST(UcodeCheck, EmptyProgramIsClean) {
  const Program p;
  const VerifyReport report = verify_ucode(UopProgram::build(p, nullptr));
  EXPECT_EQ(report.errors(), 0);
}

TEST(UcodeCheck, StreamSizeMismatchFires) {
  const Program p = loop_program();
  UopProgram ucode = UopProgram::build(p, nullptr);
  ucode.uops.pop_back();
  EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.stream-size"));
}

TEST(UcodeCheck, DisplacedSentinelFires) {
  const Program p = loop_program();
  {
    // Sentinel in the middle of the stream.
    UopProgram ucode = UopProgram::build(p, nullptr);
    ucode.uops[3].kind = UopKind::kSentinel;
    EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.sentinel"));
  }
  {
    // No sentinel at the off-the-end slot.
    UopProgram ucode = UopProgram::build(p, nullptr);
    ucode.uops.back().kind = UopKind::kNop;
    EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.sentinel"));
  }
}

TEST(UcodeCheck, WrongMirrorKindFires) {
  const Program p = loop_program();
  UopProgram ucode = UopProgram::build(p, nullptr);
  const std::size_t i = find_op(p, Opcode::kAddu);
  ucode.uops[i].kind = UopKind::kSubu;
  const VerifyReport report = verify_ucode(ucode);
  EXPECT_TRUE(fired(report, "ucode.kind"));
  EXPECT_FALSE(fired(report, "ucode.operands"));  // gated behind the kind
}

TEST(UcodeCheck, RegularInstructionLoweredToInterpFires) {
  const Program p = loop_program();
  UopProgram ucode = UopProgram::build(p, nullptr);
  ucode.uops[find_op(p, Opcode::kAddu)].kind = UopKind::kInterp;
  EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.interp"));
}

TEST(UcodeCheck, IrregularInstructionNotInterpFires) {
  // A branch target past the end of text is irregular (its wild-jump error
  // semantics belong to the reference interpreter): force the decoder's
  // output back to a regular branch uop and the rule must object.
  Program p = loop_program();
  const std::size_t i = find_op(p, Opcode::kBgtz);
  p.text[i].imm = p.size() + 5;  // now out of range
  UopProgram ucode = UopProgram::build(p, nullptr);
  ASSERT_EQ(ucode.uops[i].kind, UopKind::kInterp);
  ucode.uops[i].kind = UopKind::kBgtz;
  ucode.uops[i].target = p.text[i].imm;
  EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.interp"));
}

TEST(UcodeCheck, OperandMismatchFires) {
  const Program p = loop_program();
  UopProgram ucode = UopProgram::build(p, nullptr);
  ucode.uops[find_op(p, Opcode::kAddu)].rs ^= 1;
  EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.operands"));
}

TEST(UcodeCheck, ImmediateMismatchFires) {
  const Program p = loop_program();
  UopProgram ucode = UopProgram::build(p, nullptr);
  // An addiu's uop immediate is the sign-extended value; skew it.
  ucode.uops[find_op(p, Opcode::kAddiu)].imm += 1;
  EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.imm"));
}

TEST(UcodeCheck, ControlTargetMismatchFires) {
  const Program p = loop_program();
  UopProgram ucode = UopProgram::build(p, nullptr);
  // Point the backward bgtz's uop somewhere else.
  ucode.uops[find_op(p, Opcode::kBgtz)].target += 1;
  EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.target"));
}

TEST(UcodeCheck, ExtConfOutOfRangeFires) {
  ExtInstTable table;
  table.intern(ExtInstDef(
      /*num_inputs=*/2,
      {MicroOp{Opcode::kAddu, /*dst=*/2, /*a=*/0, /*b=*/1}}));
  Program p;
  p.text.push_back(make_ext(/*rd=*/10, /*rs=*/8, /*rt=*/9, /*conf=*/0));
  p.text.push_back(make_halt());
  UopProgram ucode = UopProgram::build(p, &table);
  ASSERT_EQ(ucode.uops[0].kind, UopKind::kExt);
  // A decoded Conf id past the table: the handler would index out of
  // bounds. (ucode.imm fires too — the decoded id no longer matches the
  // instruction — but ucode.ext is the load-bearing diagnosis.)
  ucode.uops[0].imm = table.size();
  EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.ext"));
}

TEST(UcodeCheck, SegmentTableDriftFires) {
  const Program p = loop_program();
  {
    // Wrong segment count.
    UopProgram ucode = UopProgram::build(p, nullptr);
    ASSERT_FALSE(ucode.segments.empty());
    ucode.segments.pop_back();
    EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.segments"));
  }
  {
    // Segment bounds no longer mirror the basic block.
    UopProgram ucode = UopProgram::build(p, nullptr);
    ucode.segments[0].last += 1;
    EXPECT_TRUE(fired(verify_ucode(ucode), "ucode.segments"));
  }
}

TEST(UcodeCheck, AllDiagnosticsAreErrors) {
  // The family diagnoses decoder bugs, never style: everything it emits
  // must carry error severity so --verify and t1000-verify fail the run.
  const Program p = loop_program();
  UopProgram ucode = UopProgram::build(p, nullptr);
  ucode.uops[find_op(p, Opcode::kAddu)].kind = UopKind::kInterp;
  ucode.uops[find_op(p, Opcode::kAddiu)].imm += 1;
  ucode.segments[0].last += 1;
  const VerifyReport report = verify_ucode(ucode);
  EXPECT_GT(report.errors(), 0);
  EXPECT_EQ(report.warnings(), 0);
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_EQ(d.severity, Severity::kError) << d.rule_id;
    EXPECT_EQ(d.rule_id.rfind("ucode.", 0), 0u) << d.rule_id;
  }
}

}  // namespace
}  // namespace t1000
