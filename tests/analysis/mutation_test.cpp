// Mutation tests for the selection-level verifier rules: start from a clean
// program whose greedy selection verifies with zero diagnostics, apply one
// targeted corruption, and prove the matching rule fires. Each rule class
// carries a distinct rule_id so a regression in one check cannot hide behind
// another.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/verifier.hpp"
#include "asmkit/assembler.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "hwcost/lut_model.hpp"
#include "sim/profiler.hpp"

namespace t1000 {
namespace {

bool has_rule(const VerifyReport& report, std::string_view rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule_id == rule; });
}

// $t1 = 9, $t3 = 11, $t4 = 12, $t5 = 13, $t6 = 14, $t7 = 15.
constexpr Reg kT1 = 9, kT3 = 11, kT4 = 12, kT6 = 14;

class MutationTest : public ::testing::Test {
 protected:
  // One hot three-op chain (sll -> addu -> xor) with two external inputs
  // ($t3, $t1), one output ($t7), and dead intermediates ($t5, $t6).
  void SetUp() override {
    program_ = assemble(R"(
        li $t1, 100
        li $t3, 3
        li $t0, 0
  loop: sll $t5, $t3, 4
        addu $t6, $t5, $t1
        xor $t7, $t6, $t1
        sw  $t7, 0($sp)
        addiu $t0, $t0, 1
        slti $at, $t0, 8
        bne $at, $zero, loop
        halt
    )");
    analyze();
    sel_ = select_greedy(ap_);
    rr_ = rewrite_program(program_, sel_.apps);
    ASSERT_GE(sel_.apps.size(), 1u);
  }

  void analyze() {
    ap_.program = &program_;
    ap_.cfg = Cfg::build(program_);
    ap_.liveness = compute_liveness(program_, ap_.cfg);
    ap_.profile = profile_program(program_, 1u << 22);
    ap_.sites =
        extract_sites(program_, ap_.cfg, ap_.liveness, ap_.profile, {});
  }

  VerifyReport verify(const VerifyOptions& options = {}) {
    return verify_selection(ap_, sel_, rr_, options);
  }

  // First selected member position whose original instruction matches `op`.
  std::int32_t member_with_op(Opcode op) {
    for (const Application& app : sel_.apps) {
      for (const std::int32_t p : app.positions) {
        if (program_.text[static_cast<std::size_t>(p)].op == op) return p;
      }
    }
    return -1;
  }

  Program program_;
  AnalyzedProgram ap_;
  Selection sel_;
  RewriteResult rr_;
};

TEST_F(MutationTest, CleanSelectionVerifiesWithZeroDiagnostics) {
  const VerifyReport report = verify();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
  EXPECT_GE(report.stats.apps, 1);
  // Every application recomputes to the interned configuration bit-for-bit:
  // a proof over the whole input space, no sampling.
  EXPECT_EQ(report.stats.equiv_structural, report.stats.apps);
  EXPECT_EQ(report.stats.equiv_sampled, 0);
  // ... and the translation validator discharges its symbolic proof for
  // every application as well (analysis/equiv.hpp).
  EXPECT_EQ(report.stats.translation_proven, report.stats.apps);
}

TEST_F(MutationTest, FlippedOpcodeBreaksEquivalence) {
  const std::int32_t p = member_with_op(Opcode::kAddu);
  ASSERT_GE(p, 0);
  program_.text[static_cast<std::size_t>(p)].op = Opcode::kSubu;
  const VerifyReport report = verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "sem.equiv")) << report.summary();
}

TEST_F(MutationTest, NonEligibleOpcodeIsFlagged) {
  // mul shares the Alu3 shape but is not PFU-eligible (multi-cycle IntMul).
  const std::int32_t p = member_with_op(Opcode::kAddu);
  ASSERT_GE(p, 0);
  program_.text[static_cast<std::size_t>(p)].op = Opcode::kMul;
  EXPECT_TRUE(has_rule(verify(), "ext.opcode-class"));
}

TEST_F(MutationTest, OperandWidenedPastCeilingIsFlagged) {
  const std::int32_t p = sel_.apps[0].positions[0];
  ap_.profile.insts[static_cast<std::size_t>(p)].max_src_width = 25;
  EXPECT_TRUE(has_rule(verify(), "ext.width"));
}

TEST_F(MutationTest, ThirdInputClaimIsFlagged) {
  sel_.apps[0].num_inputs = 3;
  EXPECT_TRUE(has_rule(verify(), "ext.inputs"));
}

TEST_F(MutationTest, GenuineThirdLiveInIsFlagged) {
  // Redirect the xor member's second read from $t1 (already an input) to
  // $t4: the window now needs three external registers.
  const std::int32_t p = member_with_op(Opcode::kXor);
  ASSERT_GE(p, 0);
  ASSERT_EQ(program_.text[static_cast<std::size_t>(p)].rt, kT1);
  program_.text[static_cast<std::size_t>(p)].rt = kT4;
  EXPECT_TRUE(has_rule(verify(), "ext.inputs"));
}

TEST_F(MutationTest, CorruptBranchTargetInRewrittenIsFlagged) {
  Program& q = rr_.program;
  bool corrupted = false;
  for (Instruction& ins : q.text) {
    if (is_branch(ins.op)) {
      ins.imm = q.size() + 3;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_TRUE(has_rule(verify(), "wf.branch-target"));
}

TEST_F(MutationTest, InflatedRecordedLutCostIsFlagged) {
  sel_.lut_costs[static_cast<std::size_t>(sel_.apps[0].conf)] += 40;
  EXPECT_TRUE(has_rule(verify(), "ext.lut-cost"));
}

TEST_F(MutationTest, ShrunkenBudgetIsFlagged) {
  VerifyOptions options;
  options.lut_budget = 1;
  EXPECT_TRUE(has_rule(verify(options), "ext.lut-budget"));
}

TEST_F(MutationTest, NonAscendingPositionsAreFlagged) {
  std::vector<std::int32_t>& pos = sel_.apps[0].positions;
  ASSERT_GE(pos.size(), 2u);
  std::swap(pos[0], pos[1]);
  EXPECT_TRUE(has_rule(verify(), "rw.positions"));
}

TEST_F(MutationTest, OverlappingApplicationsAreFlagged) {
  sel_.apps.push_back(sel_.apps[0]);
  EXPECT_TRUE(has_rule(verify(), "rw.positions"));
}

TEST_F(MutationTest, WrongOutputClaimIsFlagged) {
  sel_.apps[0].output = kT3;
  EXPECT_TRUE(has_rule(verify(), "ext.output"));
}

TEST_F(MutationTest, TamperedExtEncodingIsFlagged) {
  const Application& app = sel_.apps[0];
  const std::int32_t ni =
      rr_.index_map[static_cast<std::size_t>(app.positions.back())];
  ASSERT_EQ(rr_.program.text[static_cast<std::size_t>(ni)].op, Opcode::kExt);
  rr_.program.text[static_cast<std::size_t>(ni)].rd =
      static_cast<Reg>(app.output ^ 1);
  EXPECT_TRUE(has_rule(verify(), "rw.landing"));
}

TEST_F(MutationTest, EscapedIntermediateIsFlagged) {
  // Make the store read the intermediate $t6 instead of the output $t7:
  // collapsing the chain would then drop a visible write.
  bool rewired = false;
  for (Instruction& ins : program_.text) {
    if (ins.op == Opcode::kSw && ins.rt == 15) {
      ins.rt = kT6;
      rewired = true;
    }
  }
  ASSERT_TRUE(rewired);
  ap_.liveness = compute_liveness(program_, ap_.cfg);
  EXPECT_TRUE(has_rule(verify(), "ext.output"));
}

// --- Translation-validator rules (equiv.*, analysis/equiv.hpp) -------------

TEST_F(MutationTest, TruncatedIndexMapIsFlagged) {
  rr_.index_map.pop_back();
  EXPECT_TRUE(has_rule(verify(), "equiv.map"));
}

TEST_F(MutationTest, IndexMapSkippingAnIndexIsFlagged) {
  // Bumping one interior entry creates a +1/-1 step pair: a deletion map
  // may only step by 0 or 1.
  ASSERT_GE(rr_.index_map.size(), 3u);
  rr_.index_map[1] += 1;
  EXPECT_TRUE(has_rule(verify(), "equiv.map"));
}

TEST_F(MutationTest, IndexMapEndingShortIsFlagged) {
  for (std::int32_t& e : rr_.index_map) e = std::max(0, e - 1);
  EXPECT_TRUE(has_rule(verify(), "equiv.map"));
}

TEST_F(MutationTest, TamperedUncoveredInstructionIsFlagged) {
  // The loop counter's increment is uncovered (not PFU-eligible profile
  // width aside, it feeds a branch); nudging its immediate must trip the
  // byte-identity walk.
  bool tampered = false;
  for (Instruction& ins : rr_.program.text) {
    if (ins.op == Opcode::kAddiu && ins.imm == 1) {
      ins.imm = 2;
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  EXPECT_TRUE(has_rule(verify(), "equiv.replaced"));
}

TEST_F(MutationTest, BranchRetargetedInRangeIsFlagged) {
  // Retarget the loop branch to a *valid* instruction index that is not
  // where the old target maps: wf.branch-target stays quiet (the target is
  // in range) and only the translation proof can notice.
  bool tampered = false;
  for (Instruction& ins : rr_.program.text) {
    if (is_branch(ins.op)) {
      ASSERT_NE(ins.imm, 0);
      ins.imm = 0;
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  const VerifyReport report = verify();
  EXPECT_TRUE(has_rule(report, "equiv.target")) << report.summary();
  EXPECT_FALSE(has_rule(report, "wf.branch-target"));
}

TEST_F(MutationTest, TamperedTextSymbolIsFlagged) {
  auto it = rr_.program.text_symbols.find("loop");
  ASSERT_NE(it, rr_.program.text_symbols.end());
  it->second += 1;
  EXPECT_TRUE(has_rule(verify(), "equiv.target"));
}

TEST_F(MutationTest, SwappedInputBindingBreaksSymbolicProof) {
  // The EXT's micro-program reads slot 0 where the window read $t3; binding
  // the slots in the wrong order computes a different function of the
  // inputs, which the shared-DAG proof distinguishes structurally.
  Application& app = sel_.apps[0];
  ASSERT_EQ(app.num_inputs, 2);
  ASSERT_NE(app.inputs[0], app.inputs[1]);
  std::swap(app.inputs[0], app.inputs[1]);
  EXPECT_TRUE(has_rule(verify(), "equiv.symbolic"));
}

TEST_F(MutationTest, ArityMismatchBreaksSymbolicProof) {
  // Claiming a single input against a 2-in configuration is a shape
  // mismatch the symbolic phase reports before attempting a proof.
  sel_.apps[0].num_inputs = 1;
  EXPECT_TRUE(has_rule(verify(), "equiv.symbolic"));
}

TEST_F(MutationTest, ExtDroppingItsOutputIsFlagged) {
  // Redirect the rewritten EXT's destination to the dead intermediate $t5:
  // the live output $t7 is no longer written by anything, which only the
  // rewritten-program liveness proof can see.
  const Application& app = sel_.apps[0];
  const std::int32_t ni =
      rr_.index_map[static_cast<std::size_t>(app.positions.back())];
  ASSERT_EQ(rr_.program.text[static_cast<std::size_t>(ni)].op, Opcode::kExt);
  rr_.program.text[static_cast<std::size_t>(ni)].rd = 13;  // $t5
  const VerifyReport report = verify();
  EXPECT_TRUE(has_rule(report, "equiv.dead-kill")) << report.summary();
}

TEST_F(MutationTest, ResurrectedIntermediateIsFlagged) {
  // Rewire the rewritten store to read the fused-away intermediate $t6:
  // the uncovered-instruction walk sees the edit, and the liveness proof
  // additionally reports that a killed register became live again.
  bool rewired = false;
  for (Instruction& ins : rr_.program.text) {
    if (ins.op == Opcode::kSw && ins.rt == 15) {
      ins.rt = kT6;
      rewired = true;
    }
  }
  ASSERT_TRUE(rewired);
  const VerifyReport report = verify();
  EXPECT_TRUE(has_rule(report, "equiv.replaced")) << report.summary();
  EXPECT_TRUE(has_rule(report, "equiv.dead-kill")) << report.summary();
}

// rw.clobber needs a non-member between chain members, which the extractor
// never selects — handcraft the application.
TEST(VerifyClobber, NonMemberWritingInputIsFlagged) {
  Program p = assemble(R"(
        li $t1, 5
        li $t3, 3
  loop: sll $t5, $t3, 4
        addiu $t3, $t3, 1
        addu $t6, $t5, $t1
        sw  $t6, 0($sp)
        addiu $t1, $t1, 1
        slti $at, $t1, 30
        bne $at, $zero, loop
        halt
  )");
  AnalyzedProgram ap;
  ap.program = &p;
  ap.cfg = Cfg::build(p);
  ap.liveness = compute_liveness(p, ap.cfg);
  ap.profile = profile_program(p, 1u << 22);

  // The window {sll@2, addu@4} skips the addiu@3 that bumps input $t3.
  Application app;
  app.positions = {2, 4};
  app.conf = 0;
  app.output = kT6;
  app.inputs = {kT3, kT1};
  app.num_inputs = 2;

  Selection sel;
  sel.table.intern(ExtInstDef(
      2, {MicroOp{Opcode::kSll, /*dst=*/2, /*a=*/0, /*b=*/-1, /*imm=*/4},
          MicroOp{Opcode::kAddu, /*dst=*/3, /*a=*/2, /*b=*/1, /*imm=*/0}}));
  sel.apps = {app};
  sel.lengths = {2};
  // Mirror the selector's bookkeeping so only the clobber rule can fire.
  const int width = std::max(ap.profile.at(2).max_src_width,
                             ap.profile.at(4).max_src_width);
  sel.lut_costs = {
      estimate_luts(sel.table.at(0), {width, width}).luts};

  const RewriteResult rr = rewrite_program(p, sel.apps);
  const VerifyReport report = verify_selection(ap, sel, rr, {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "rw.clobber")) << report.summary();
}

}  // namespace
}  // namespace t1000
