// Randomized testing of the translation validator (analysis/equiv.hpp).
//
// Seeded random programs (tests/support/random_program.hpp) run through
// the full extract -> select -> rewrite pipeline at a seed-randomized
// candidate shape (2..4 inputs, 1..2 outputs), and every resulting
// selection must discharge the whole static battery — including the
// symbolic translation proof — with zero diagnostics. The rewritten
// program must also replay to the baseline's functional fingerprint, so
// the static proof and the dynamic differential cross-check each other on
// the same corpus.
//
// The negative half mutates exactly one element of a clean rewrite and
// requires the *matching* equiv.* rule to fire: a validator that proves
// everything is indistinguishable from one that proves nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "analysis/verifier.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "sim/trace.hpp"
#include "support/random_program.hpp"

namespace t1000 {
namespace {

using fuzz::build_random_program;

constexpr std::uint64_t kStepBound = 1u << 16;

bool has_rule(const VerifyReport& report, std::string_view rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule_id == rule; });
}

// The seed-randomized candidate shape: sweeps the whole supported range,
// including the paper's default 2-in/1-out.
ExtractPolicy shape_for(std::uint32_t seed) {
  ExtractPolicy policy;
  policy.max_inputs = 2 + static_cast<int>(seed % 3);
  policy.max_outputs = 1 + static_cast<int>((seed / 3) % 2);
  return policy;
}

struct FuzzCase {
  Program program;
  AnalyzedProgram ap;
  Selection sel;
  RewriteResult rr;
  SelectPolicy policy;
};

// Builds seed's program and selects at seed's shape; greedy and selective
// alternate so both selector paths feed the validator.
FuzzCase build_case(std::uint32_t seed) {
  FuzzCase c;
  c.program = build_random_program(seed);
  c.policy.extract = shape_for(seed);
  c.ap = analyze_program(c.program, kStepBound, c.policy.extract);
  c.sel = seed % 2 == 0 ? select_greedy(c.ap, c.policy.lut_budget)
                        : select_selective(c.ap, c.policy);
  c.rr = rewrite_program(c.program, c.sel.apps);
  return c;
}

TEST(TranslationFuzz, RandomRewritesAtRandomShapesProveClean) {
  int total_apps = 0;
  int widened_apps = 0;
  for (std::uint32_t seed = 1; seed <= 128; ++seed) {
    const FuzzCase c = build_case(seed);
    const std::string tag = "seed " + std::to_string(seed);

    const VerifyReport report = verify_selection(
        c.ap, c.sel, c.rr, verify_options_for(c.policy));
    EXPECT_EQ(report.errors(), 0) << tag << ": " << report.summary();
    EXPECT_EQ(report.stats.translation_proven,
              static_cast<int>(c.sel.apps.size()))
        << tag;
    total_apps += static_cast<int>(c.sel.apps.size());
    if (c.policy.extract.max_inputs > 2 || c.policy.extract.max_outputs > 1) {
      widened_apps += static_cast<int>(c.sel.apps.size());
    }

    // Dynamic cross-check: the rewritten program's committed trace keeps
    // the baseline's functional fingerprint.
    const CommittedTrace base = record_trace(c.program, nullptr, kStepBound);
    const CommittedTrace rewritten =
        record_trace(c.rr.program, &c.sel.table, kStepBound);
    EXPECT_EQ(rewritten.checksum(), base.checksum()) << tag;
  }
  // The corpus must actually exercise the validator — and at widened
  // shapes, not just the default. (Empty selections prove nothing.)
  EXPECT_GE(total_apps, 40);
  EXPECT_GE(widened_apps, 30);
}

// One seeded mutation per kind, applied to every fuzz case that selected
// at least one application; each must trip exactly the matching rule.

TEST(TranslationFuzz, TruncatedIndexMapFiresMapRule) {
  for (std::uint32_t seed = 1; seed <= 128; ++seed) {
    FuzzCase c = build_case(seed);
    if (c.sel.apps.empty()) continue;
    c.rr.index_map.pop_back();
    const VerifyReport report = verify_selection(
        c.ap, c.sel, c.rr, verify_options_for(c.policy));
    EXPECT_TRUE(has_rule(report, "equiv.map")) << "seed " << seed;
  }
}

TEST(TranslationFuzz, TamperedSurvivorFiresReplacedOrTargetRule) {
  for (std::uint32_t seed = 1; seed <= 128; ++seed) {
    FuzzCase c = build_case(seed);
    if (c.sel.apps.empty()) continue;
    // Mutate one rewritten instruction: the first non-EXT survivor after
    // the first landing point (seed-stable, always exists — `halt` ends
    // every program). Control instructions must trip the target proof,
    // anything else the byte-identity walk.
    const std::int32_t landing = c.rr.index_map[static_cast<std::size_t>(
        c.sel.apps.front().positions.back())];
    std::int32_t victim = -1;
    for (std::int32_t i = landing; i < c.rr.program.size(); ++i) {
      if (c.rr.program.text[static_cast<std::size_t>(i)].op != Opcode::kExt) {
        victim = i;
        break;
      }
    }
    ASSERT_GE(victim, 0) << "seed " << seed;
    Instruction& ins = c.rr.program.text[static_cast<std::size_t>(victim)];
    const bool control = is_branch(ins.op) || op_kind(ins.op) == OpKind::kJump;
    ins.imm += 1;
    const VerifyReport report = verify_selection(
        c.ap, c.sel, c.rr, verify_options_for(c.policy));
    EXPECT_TRUE(has_rule(report, control ? "equiv.target" : "equiv.replaced"))
        << "seed " << seed << " victim " << victim << ": "
        << report.summary();
  }
}

TEST(TranslationFuzz, CorruptedInputClaimFiresSymbolicRule) {
  int mutated = 0;
  for (std::uint32_t seed = 1; seed <= 128; ++seed) {
    FuzzCase c = build_case(seed);
    // Swapping the first application's input binding changes which slot
    // each operand feeds; skip apps whose proof genuinely survives the
    // swap (single input, identical registers, or a commutative window).
    auto it = std::find_if(c.sel.apps.begin(), c.sel.apps.end(),
                           [](const Application& a) {
                             return a.num_inputs >= 2 &&
                                    a.inputs[0] != a.inputs[1];
                           });
    if (it == c.sel.apps.end()) continue;
    std::swap(it->inputs[0], it->inputs[1]);
    const VerifyReport report = verify_selection(
        c.ap, c.sel, c.rr, verify_options_for(c.policy));
    if (!has_rule(report, "equiv.symbolic")) continue;  // commutative window
    ++mutated;
  }
  // Commutative single-op windows legitimately survive the swap; the
  // corpus must still prove the rule fires on a healthy number of
  // order-sensitive ones.
  EXPECT_GE(mutated, 12);
}

}  // namespace
}  // namespace t1000
