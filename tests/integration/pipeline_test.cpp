// End-to-end integration tests over the full toolchain: workload ->
// profile -> extract -> select -> rewrite -> functional validation ->
// timing simulation. These assert the paper's headline *relationships* for
// every benchmark, which is what the reproduction must preserve.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace t1000 {
namespace {

RunSpec baseline() { return baseline_spec(""); }

RunSpec greedy(int pfus, int reconfig) {
  return greedy_spec("", "", pfus, reconfig);
}

RunSpec selective(int pfus, int reconfig) {
  return selective_spec("", "", pfus, reconfig);
}

class EndToEnd : public ::testing::TestWithParam<int> {
 protected:
  static WorkloadExperiment& experiment(int index) {
    // Analysis is expensive; share one experiment per benchmark across
    // tests in this suite.
    static std::vector<std::unique_ptr<WorkloadExperiment>> cache(8);
    auto& slot = cache[static_cast<std::size_t>(index)];
    if (!slot) {
      slot = std::make_unique<WorkloadExperiment>(
          all_workloads()[static_cast<std::size_t>(index)]);
    }
    return *slot;
  }
};

TEST_P(EndToEnd, GreedyUnlimitedBeatsBaseline) {
  WorkloadExperiment& exp = experiment(GetParam());
  const RunOutcome base = exp.run(baseline());
  const RunOutcome best = exp.run(greedy(PfuConfig::kUnlimited, 0));
  // Every benchmark gains; the paper's range is ~4.5%..44%.
  EXPECT_GT(speedup(base.stats, best.stats), 1.03);
  EXPECT_LT(speedup(base.stats, best.stats), 1.60);
  EXPECT_GE(best.num_configs, 3);
}

TEST_P(EndToEnd, GreedyThrashesWithTwoPfus) {
  WorkloadExperiment& exp = experiment(GetParam());
  const RunOutcome base = exp.run(baseline());
  const RunOutcome two = exp.run(greedy(2, 10));
  // Section 4: "substantially worse than that of the original processor".
  EXPECT_LT(speedup(base.stats, two.stats), 1.0);
  EXPECT_GT(two.stats.pfu.reconfigurations, 1000u);
}

TEST_P(EndToEnd, SelectiveNeverLosesWithTwoPfus) {
  WorkloadExperiment& exp = experiment(GetParam());
  const RunOutcome base = exp.run(baseline());
  const RunOutcome two = exp.run(selective(2, 10));
  EXPECT_GE(speedup(base.stats, two.stats), 1.0);
  // Selection avoids thrashing: reconfiguration count is tiny.
  EXPECT_LT(two.stats.pfu.reconfigurations, 1000u);
}

TEST_P(EndToEnd, FourPfusNearlyMatchUnlimited) {
  WorkloadExperiment& exp = experiment(GetParam());
  const RunOutcome four = exp.run(selective(4, 10));
  const RunOutcome eight = exp.run(selective(8, 10));
  const RunOutcome unl = exp.run(selective(PfuConfig::kUnlimited, 10));
  // Section 5.2: "four PFUs are typically enough". gsm_enc carries more
  // distinct chain shapes than four and keeps a gap, hence the headroom;
  // eight PFUs must close it everywhere.
  EXPECT_LE(static_cast<double>(four.stats.cycles),
            static_cast<double>(unl.stats.cycles) * 1.08);
  EXPECT_LE(static_cast<double>(eight.stats.cycles),
            static_cast<double>(unl.stats.cycles) * 1.02);
}

TEST_P(EndToEnd, SelectiveIsInsensitiveToReconfigCost) {
  WorkloadExperiment& exp = experiment(GetParam());
  const RunOutcome cheap = exp.run(selective(2, 10));
  const RunOutcome costly = exp.run(selective(2, 500));
  // Section 5.2: speedups retained up to 500-cycle reconfiguration times.
  EXPECT_LE(static_cast<double>(costly.stats.cycles),
            static_cast<double>(cheap.stats.cycles) * 1.03);
}

TEST_P(EndToEnd, SelectedInstructionsFitThePfu) {
  WorkloadExperiment& exp = experiment(GetParam());
  const RunOutcome r = exp.run(selective(4, 10));
  for (const int luts : r.lut_costs) {
    EXPECT_LE(luts, 150);
    EXPECT_GT(luts, 0);
  }
  for (const int len : r.lengths) {
    EXPECT_GE(len, 2);
    EXPECT_LE(len, 8);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EndToEnd, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return all_workloads()[static_cast<std::size_t>(
                                                      info.param)]
                               .name;
                         });

TEST(EndToEndSuite, SpeedupOrderingMatchesPaper) {
  // The paper's Figure 2 ordering anchors: gsm_dec gains most, g721_dec
  // least, and decode > encode for gsm / decode < encode is NOT required
  // elsewhere. Check the two anchors.
  auto best_speedup = [](const char* name) {
    WorkloadExperiment exp(*find_workload(name));
    const RunOutcome base = exp.run(baseline());
    const RunOutcome best = exp.run(greedy(PfuConfig::kUnlimited, 0));
    return speedup(base.stats, best.stats);
  };
  const double gsm_dec = best_speedup("gsm_dec");
  for (const Workload& w : all_workloads()) {
    if (w.name == "gsm_dec") continue;
    EXPECT_LE(best_speedup(w.name.c_str()), gsm_dec) << w.name;
  }
  EXPECT_LE(best_speedup("g721_dec"), best_speedup("gsm_enc"));
}

}  // namespace
}  // namespace t1000
