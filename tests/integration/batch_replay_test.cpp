// Property test for config-parallel batched replay (simulate_replay_batch):
// for randomized lane counts, shuffled config orders, and mixed
// observed/plain lanes, every lane of a batch must be byte-identical —
// statistics and stall breakdowns — to an independent single-lane replay
// of the same configuration. The seed is fixed, so a failure reproduces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/serialize.hpp"
#include "uarch/timing.hpp"
#include "workloads/workload.hpp"

namespace t1000 {
namespace {

// A pool of deliberately varied machine configurations: widths, window and
// MSHR limits, cache/TLB geometry, branch predictors, PFU banks. Built
// deterministically so every run exercises the same population.
std::vector<MachineConfig> config_pool() {
  std::vector<MachineConfig> pool;
  pool.push_back(pfu_machine(2, 10));
  pool.push_back(pfu_machine(4, 0));
  pool.push_back(pfu_machine(PfuConfig::kUnlimited, 0));

  MachineConfig narrow = pfu_machine(2, 50);
  narrow.fetch_width = narrow.decode_width = 2;
  narrow.issue_width = narrow.commit_width = 2;
  narrow.ruu_size = 16;
  narrow.fetch_queue_size = 4;
  narrow.int_alus = 2;
  narrow.mem_ports = 1;
  narrow.max_outstanding_misses = 2;
  pool.push_back(narrow);

  MachineConfig small_caches = pfu_machine(2, 10);
  small_caches.il1 = {.size_bytes = 4 * 1024, .line_bytes = 16, .assoc = 1,
                      .hit_latency = 1};
  small_caches.dl1 = {.size_bytes = 4 * 1024, .line_bytes = 16, .assoc = 2,
                      .hit_latency = 1};
  small_caches.l2 = {.size_bytes = 64 * 1024, .line_bytes = 32, .assoc = 2,
                     .hit_latency = 8};
  small_caches.memory_latency = 40;
  small_caches.itlb.entries = 8;
  small_caches.dtlb.entries = 8;
  pool.push_back(small_caches);

  MachineConfig bimodal = pfu_machine(2, 10);
  bimodal.branch.kind = BranchPredictorKind::kBimodal;
  pool.push_back(bimodal);

  MachineConfig multi_cycle = pfu_machine(4, 10);
  multi_cycle.pfu.multi_cycle_ext = true;
  multi_cycle.pfu.levels_per_cycle = 1;
  pool.push_back(multi_cycle);

  MachineConfig wide = pfu_machine(8, 0);
  wide.fetch_width = wide.decode_width = 8;
  wide.issue_width = wide.commit_width = 8;
  wide.ruu_size = 128;
  wide.int_alus = 8;
  wide.mem_ports = 4;
  pool.push_back(wide);
  return pool;
}

struct Prepared {
  const Program* program;
  const ExtInstTable* table;
  const CommittedTrace* trace;
};

// One experiment per selector, shared across rounds (trace recording is
// the expensive part). kSelective compiles for the pool's 2-PFU machines;
// lanes with more PFUs than the selection assumed are still legal.
Prepared prepared_for(Selector selector) {
  static WorkloadExperiment exp(*find_workload("gsm_dec"));
  RunSpec spec;
  spec.workload = "gsm_dec";
  spec.selector = selector;
  if (selector == Selector::kSelective) spec.policy.num_pfus = 2;
  const WorkloadExperiment::PreparedView view = exp.prepared(spec);
  return {view.program, view.table, view.trace};
}

std::string lane_fingerprint(const SimStats& stats,
                             const SimObservation* obs) {
  std::string fp = to_json(stats).dump();
  if (obs != nullptr) fp += "|" + to_json(obs->stalls).dump();
  return fp;
}

TEST(BatchReplay, RandomizedLaneSetsMatchIndependentReplays) {
  std::mt19937 rng(0xC0FFEEu);
  const std::vector<MachineConfig> pool = config_pool();

  for (const Selector selector :
       {Selector::kNone, Selector::kGreedy, Selector::kSelective}) {
    const Prepared prep = prepared_for(selector);
    ASSERT_NE(prep.program, nullptr);
    ASSERT_NE(prep.trace, nullptr);

    for (int round = 0; round < 6; ++round) {
      // A random draw (with repeats) of random size, in shuffled order,
      // with a random subset of lanes observed.
      const std::size_t lane_count =
          1 + rng() % (2 * pool.size());
      std::vector<std::size_t> picks(lane_count);
      std::vector<bool> observe(lane_count);
      for (std::size_t i = 0; i < lane_count; ++i) {
        picks[i] = rng() % pool.size();
        observe[i] = rng() % 2 == 0;
      }
      std::shuffle(picks.begin(), picks.end(), rng);

      BatchSimRequest request;
      request.program = prep.program;
      request.ext_table = prep.table;
      request.trace = prep.trace;
      request.lanes.resize(lane_count);
      std::vector<SimObservation> batch_obs(lane_count);
      for (std::size_t i = 0; i < lane_count; ++i) {
        request.lanes[i].machine = pool[picks[i]];
        if (observe[i]) request.lanes[i].observation = &batch_obs[i];
      }
      const std::vector<BatchLaneResult> lanes =
          simulate_replay_batch(request);
      ASSERT_EQ(lanes.size(), lane_count);

      for (std::size_t i = 0; i < lane_count; ++i) {
        ASSERT_EQ(lanes[i].error, nullptr)
            << "selector " << selector_name(selector) << " round " << round
            << " lane " << i;
        SimObservation single_obs;
        const SimStats single = simulate(
            {.program = prep.program,
             .ext_table = prep.table,
             .trace = prep.trace,
             .machine = pool[picks[i]],
             .observation = observe[i] ? &single_obs : nullptr});
        EXPECT_EQ(lane_fingerprint(lanes[i].stats,
                                   observe[i] ? &batch_obs[i] : nullptr),
                  lane_fingerprint(single,
                                   observe[i] ? &single_obs : nullptr))
            << "selector " << selector_name(selector) << " round " << round
            << " lane " << i << " (config " << picks[i] << ")";
      }
    }
  }
}

TEST(BatchReplay, LaneFailuresAreIsolated) {
  // A lane that exhausts its cycle budget carries SimError in its slot;
  // sibling lanes complete untouched and stay byte-identical to their
  // independent replays.
  const Prepared prep = prepared_for(Selector::kNone);
  BatchSimRequest request;
  request.program = prep.program;
  request.trace = prep.trace;
  request.lanes.resize(3);
  request.lanes[0].machine = baseline_machine();
  request.lanes[1].machine = baseline_machine();
  request.lanes[1].max_cycles = 10;  // guaranteed to blow the budget
  request.lanes[2].machine = pfu_machine(2, 10);

  const std::vector<BatchLaneResult> lanes = simulate_replay_batch(request);
  ASSERT_EQ(lanes.size(), 3u);
  EXPECT_EQ(lanes[0].error, nullptr);
  ASSERT_NE(lanes[1].error, nullptr);
  EXPECT_THROW(std::rethrow_exception(lanes[1].error), SimError);
  EXPECT_EQ(lanes[2].error, nullptr);

  const SimStats a = simulate(
      {.program = prep.program, .trace = prep.trace,
       .machine = baseline_machine()});
  const SimStats c = simulate(
      {.program = prep.program, .trace = prep.trace,
       .machine = pfu_machine(2, 10)});
  EXPECT_EQ(to_json(lanes[0].stats).dump(), to_json(a).dump());
  EXPECT_EQ(to_json(lanes[2].stats).dump(), to_json(c).dump());
}

TEST(BatchReplay, SingleLaneBatchMatchesPlainReplay) {
  const Prepared prep = prepared_for(Selector::kGreedy);
  BatchSimRequest request;
  request.program = prep.program;
  request.ext_table = prep.table;
  request.trace = prep.trace;
  request.lanes.resize(1);
  request.lanes[0].machine = pfu_machine(4, 10);
  const std::vector<BatchLaneResult> lanes = simulate_replay_batch(request);
  ASSERT_EQ(lanes.size(), 1u);
  ASSERT_EQ(lanes[0].error, nullptr);
  const SimStats single = simulate(
      {.program = prep.program, .ext_table = prep.table, .trace = prep.trace,
       .machine = pfu_machine(4, 10)});
  EXPECT_EQ(to_json(lanes[0].stats).dump(), to_json(single).dump());
}

}  // namespace
}  // namespace t1000
