// The replay-equivalence proof behind the trace-sharing engine.
//
// WorkloadExperiment::run() times every spec by replaying a recorded
// committed trace (sim/trace.hpp) instead of dragging the functional
// Executor through the pipeline. That is only sound if replay is
// *cycle-exact*: for every workload, selector, and machine configuration,
// the replayed run must produce byte-identical SimStats to a direct
// execution-driven simulation of the same rewritten program. This suite is
// that proof, over every registered workload (paper suite + extended
// suite), all three selectors, and a deliberately hostile set of machine
// configurations: PFU counts from 2 to unlimited, reconfiguration
// latencies from free to punitive, shrunken cache/TLB geometries, a real
// (mispredicting) branch predictor, multi-cycle extended instructions, and
// a narrow machine with tight RUU/MSHR limits.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/serialize.hpp"
#include "uarch/timing.hpp"

namespace t1000 {
namespace {

struct NamedMachine {
  std::string name;
  MachineConfig machine;
};

// The sweep axes. Every configuration carries PFUs so the rewritten
// (EXT-bearing) programs are legal everywhere.
const std::vector<NamedMachine>& machines() {
  static const std::vector<NamedMachine> configs = [] {
    std::vector<NamedMachine> out;
    out.push_back({"2pfu_lat10", pfu_machine(2, 10)});
    out.push_back({"4pfu_lat10", pfu_machine(4, 10)});
    out.push_back({"unlimited_lat0", pfu_machine(PfuConfig::kUnlimited, 0)});
    out.push_back({"2pfu_lat0", pfu_machine(2, 0)});
    out.push_back({"2pfu_lat100", pfu_machine(2, 100)});

    MachineConfig small = pfu_machine(2, 10);
    small.il1 = {.size_bytes = 4 * 1024, .line_bytes = 16, .assoc = 1,
                 .hit_latency = 1};
    small.dl1 = {.size_bytes = 4 * 1024, .line_bytes = 16, .assoc = 2,
                 .hit_latency = 1};
    small.l2 = {.size_bytes = 64 * 1024, .line_bytes = 32, .assoc = 2,
                .hit_latency = 8};
    small.memory_latency = 40;
    small.itlb.entries = 8;
    small.dtlb.entries = 8;
    out.push_back({"small_caches", small});

    MachineConfig bimodal = pfu_machine(2, 10);
    bimodal.branch.kind = BranchPredictorKind::kBimodal;
    out.push_back({"bimodal", bimodal});

    MachineConfig deep = pfu_machine(4, 10);
    deep.pfu.multi_cycle_ext = true;
    deep.pfu.levels_per_cycle = 1;
    out.push_back({"multi_cycle_ext", deep});

    MachineConfig narrow = pfu_machine(2, 10);
    narrow.fetch_width = 2;
    narrow.decode_width = 2;
    narrow.issue_width = 2;
    narrow.commit_width = 2;
    narrow.ruu_size = 16;
    narrow.fetch_queue_size = 4;
    narrow.int_alus = 2;
    narrow.mem_ports = 1;
    narrow.max_outstanding_misses = 2;
    out.push_back({"narrow_ruu16_mshr2", narrow});
    return out;
  }();
  return configs;
}

const std::vector<Workload>& every_workload() {
  static const std::vector<Workload> all = [] {
    std::vector<Workload> out = all_workloads();
    const std::vector<Workload>& extra = extended_workloads();
    out.insert(out.end(), extra.begin(), extra.end());
    return out;
  }();
  return all;
}

RunSpec spec_for(const Workload& w, Selector selector,
                 const NamedMachine& nm) {
  RunSpec spec;
  spec.workload = w.name;
  spec.label = nm.name;
  spec.selector = selector;
  spec.machine = nm.machine;
  if (selector == Selector::kSelective) {
    // The selection must know the PFU budget it compiles for (the same
    // invariant selective_spec() maintains).
    spec.policy.num_pfus = nm.machine.pfu.count == PfuConfig::kUnlimited
                               ? kUnlimitedPfus
                               : nm.machine.pfu.count;
  }
  return spec;
}

class ReplayDifferential : public ::testing::TestWithParam<std::size_t> {
 protected:
  static WorkloadExperiment& experiment(std::size_t index) {
    static std::vector<std::unique_ptr<WorkloadExperiment>> cache(
        every_workload().size());
    auto& slot = cache[index];
    if (!slot) {
      slot = std::make_unique<WorkloadExperiment>(every_workload()[index]);
    }
    return *slot;
  }
};

TEST_P(ReplayDifferential, ReplayMatchesDirectSimulationByteForByte) {
  const Workload& w = every_workload()[GetParam()];
  WorkloadExperiment& exp = experiment(GetParam());

  for (const Selector selector :
       {Selector::kNone, Selector::kGreedy, Selector::kSelective}) {
    for (const NamedMachine& nm : machines()) {
      const RunSpec spec = spec_for(w, selector, nm);
      const WorkloadExperiment::PreparedView view = exp.prepared(spec);
      ASSERT_NE(view.program, nullptr);
      ASSERT_NE(view.trace, nullptr);

      // The replay-backed engine path...
      const RunOutcome replayed = exp.run(spec);
      // ...versus a from-scratch execution-driven simulation of the same
      // (rewritten) program under the same machine.
      const SimStats direct =
          simulate({.program = view.program, .ext_table = view.table, .machine = spec.machine, .max_cycles = spec.max_cycles});

      EXPECT_EQ(to_json(direct).dump(), to_json(replayed.stats).dump())
          << w.name << " / " << selector_name(selector) << " / " << nm.name;
      EXPECT_EQ(replayed.trace_steps, view.trace->size());
      EXPECT_EQ(replayed.trace_hash, view.trace->content_hash());
      EXPECT_EQ(replayed.checksum, view.trace->checksum());
    }
  }
}

TEST_P(ReplayDifferential, ObservedReplayMatchesDirectStallBreakdown) {
  // The observability layer must be replay-exact too: the engine times
  // every spec via replay, so RunSpec::observe is only trustworthy if the
  // replayed stall attribution is identical to a direct simulation's. A
  // representative machine subset keeps the sweep affordable while still
  // covering a real predictor and tight RUU/MSHR limits.
  const Workload& w = every_workload()[GetParam()];
  WorkloadExperiment& exp = experiment(GetParam());

  const auto covered = [](const std::string& name) {
    return name == "2pfu_lat10" || name == "bimodal" ||
           name == "narrow_ruu16_mshr2";
  };
  for (const Selector selector :
       {Selector::kNone, Selector::kGreedy, Selector::kSelective}) {
    for (const NamedMachine& nm : machines()) {
      if (!covered(nm.name)) continue;
      const RunSpec spec = spec_for(w, selector, nm);
      const WorkloadExperiment::PreparedView view = exp.prepared(spec);
      ASSERT_NE(view.program, nullptr);
      ASSERT_NE(view.trace, nullptr);

      SimObservation direct_obs;
      const SimStats direct = simulate({.program = view.program, .ext_table = view.table, .machine = spec.machine, .max_cycles = spec.max_cycles, .observation = &direct_obs});
      // The accounting invariant: every non-committing cycle is charged to
      // exactly one cause, on every workload and selector.
      EXPECT_EQ(direct_obs.stalls.cycles, direct.cycles)
          << w.name << " / " << selector_name(selector) << " / " << nm.name;
      EXPECT_EQ(direct_obs.stalls.cause_cycles(),
                direct_obs.stalls.stall_cycles())
          << w.name << " / " << selector_name(selector) << " / " << nm.name;

      // Observation must be invisible to the statistics...
      const SimStats plain =
          simulate({.program = view.program, .ext_table = view.table, .machine = spec.machine, .max_cycles = spec.max_cycles});
      EXPECT_EQ(to_json(plain).dump(), to_json(direct).dump())
          << w.name << " / " << selector_name(selector) << " / " << nm.name;

      // ...and the replay path must attribute byte-identically.
      SimObservation replay_obs;
      const SimStats replayed =
          simulate({.program = view.program, .ext_table = view.table, .trace = view.trace, .machine = spec.machine, .max_cycles = spec.max_cycles, .observation = &replay_obs});
      EXPECT_EQ(to_json(direct).dump(), to_json(replayed).dump())
          << w.name << " / " << selector_name(selector) << " / " << nm.name;
      EXPECT_EQ(to_json(direct_obs.stalls).dump(),
                to_json(replay_obs.stalls).dump())
          << w.name << " / " << selector_name(selector) << " / " << nm.name;
    }
  }
}

TEST_P(ReplayDifferential, BatchedReplayMatchesSequentialRuns) {
  // The config-parallel engine path: every machine configuration that
  // shares a preparation is timed as one lane of a single batched sweep.
  // Batching is only sound if each lane's outcome — statistics and, for
  // observed lanes, the stall breakdown — is byte-identical to the run
  // the sequential path would have produced.
  const Workload& w = every_workload()[GetParam()];
  WorkloadExperiment& exp = experiment(GetParam());

  for (const Selector selector :
       {Selector::kNone, Selector::kGreedy, Selector::kSelective}) {
    std::vector<RunSpec> specs;
    for (const NamedMachine& nm : machines()) {
      // Selective lanes must share the selection policy (the batch-identity
      // rule): restrict that sweep to the 2-PFU machines.
      if (selector == Selector::kSelective && nm.machine.pfu.count != 2) {
        continue;
      }
      RunSpec spec = spec_for(w, selector, nm);
      spec.observe = specs.size() % 2 == 1;  // mix observed and plain lanes
      specs.push_back(spec);
    }
    ASSERT_GT(specs.size(), 1u);

    const std::vector<WorkloadExperiment::BatchRunOutcome> lanes =
        exp.run_batch(specs);
    ASSERT_EQ(lanes.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_EQ(lanes[i].error, nullptr)
          << w.name << " / " << selector_name(selector) << " / "
          << specs[i].label;
      const RunOutcome single = exp.run(specs[i]);
      EXPECT_EQ(to_json(lanes[i].outcome.stats).dump(),
                to_json(single.stats).dump())
          << w.name << " / " << selector_name(selector) << " / "
          << specs[i].label;
      EXPECT_EQ(lanes[i].outcome.observed, single.observed);
      if (single.observed) {
        EXPECT_EQ(to_json(lanes[i].outcome.stalls).dump(),
                  to_json(single.stalls).dump())
            << w.name << " / " << selector_name(selector) << " / "
            << specs[i].label;
      }
    }
  }
}

TEST_P(ReplayDifferential, WidenedShapesReplayByteForByte) {
  // Widened candidate shapes (ExtractPolicy::max_inputs/max_outputs) route
  // through their own shape-sensitive analysis and produce MIMO EXTs; the
  // replay engine must stay cycle-exact for them too, and the selections
  // must pass the full static battery (translation proof included) before
  // they are timed.
  const Workload& w = every_workload()[GetParam()];
  WorkloadExperiment& exp = experiment(GetParam());

  const int shapes[][2] = {{4, 1}, {4, 2}};
  for (const auto& shape : shapes) {
    for (const Selector selector : {Selector::kGreedy, Selector::kSelective}) {
      RunSpec spec = spec_for(w, selector, machines()[0]);
      spec.policy.extract.max_inputs = shape[0];
      spec.policy.extract.max_outputs = shape[1];
      spec.verify = true;
      const std::string tag = w.name + " / " +
                              std::string(selector_name(selector)) + " / " +
                              std::to_string(shape[0]) + "in" +
                              std::to_string(shape[1]) + "out";

      const VerifyReport& report = exp.verify(spec);
      EXPECT_TRUE(report.ok()) << tag << ": " << report.summary();

      const WorkloadExperiment::PreparedView view = exp.prepared(spec);
      ASSERT_NE(view.program, nullptr);
      const RunOutcome replayed = exp.run(spec);
      const SimStats direct =
          simulate({.program = view.program, .ext_table = view.table, .machine = spec.machine, .max_cycles = spec.max_cycles});
      EXPECT_EQ(to_json(direct).dump(), to_json(replayed.stats).dump()) << tag;
      EXPECT_EQ(replayed.checksum, view.trace->checksum()) << tag;
    }
  }
}

TEST_P(ReplayDifferential, SharedSelectorsReuseOneTraceAcrossMachines) {
  // Baseline and greedy preparations do not depend on the machine, so
  // every machine configuration must replay the very same trace object.
  const Workload& w = every_workload()[GetParam()];
  WorkloadExperiment& exp = experiment(GetParam());
  for (const Selector selector : {Selector::kNone, Selector::kGreedy}) {
    const CommittedTrace* first = nullptr;
    for (const NamedMachine& nm : machines()) {
      const WorkloadExperiment::PreparedView view =
          exp.prepared(spec_for(w, selector, nm));
      if (first == nullptr) {
        first = view.trace;
      } else {
        EXPECT_EQ(view.trace, first)
            << w.name << " / " << selector_name(selector) << " / " << nm.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ReplayDifferential,
    ::testing::Range<std::size_t>(0, every_workload().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return every_workload()[info.param].name;
    });

}  // namespace
}  // namespace t1000
