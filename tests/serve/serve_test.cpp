// Tests for the t1000-serve layer: SimService's API surface driven
// directly through handle_http (no socket), plus the HttpServer transport
// exercised over real loopback connections.
//
// The load-bearing claims, in order: a grid submitted to the service
// yields results byte-identical to the same grid run through the
// in-process engine; admission is a bounded queue that rejects with 429
// rather than buffering without bound; per-request budgets ride the grid's
// timeout taxonomy and are clamped by the operator's cap; and the HTTP
// layer speaks enough HTTP/1.1 for curl and the CI smoke job.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "harness/grid.hpp"
#include "harness/serialize.hpp"
#include "serve/http.hpp"
#include "workloads/workload.hpp"

namespace t1000::serve {
namespace {

// Small two-workload request shared by most tests.
Json small_request() {
  Json runs = Json::array();
  runs.push_back(to_json(baseline_spec("gsm_dec")));
  runs.push_back(to_json(greedy_spec("gsm_dec", "greedy", 2, 10)));
  runs.push_back(to_json(baseline_spec("g721_dec")));
  Json request = Json::object();
  request["runs"] = std::move(runs);
  return request;
}

HttpRequest post(std::string target, std::string body) {
  HttpRequest r;
  r.method = "POST";
  r.target = std::move(target);
  r.body = std::move(body);
  return r;
}

HttpRequest get(std::string target) {
  HttpRequest r;
  r.method = "GET";
  r.target = std::move(target);
  return r;
}

// Polls a job until it leaves queued/running; fails the test on timeout.
Json wait_for_job(SimService& service, std::uint64_t id) {
  for (int i = 0; i < 600; ++i) {
    const HttpResponse r =
        service.handle_http(get("/v1/jobs/" + std::to_string(id)));
    EXPECT_EQ(r.status, 200);
    Json status = Json::parse(r.body);
    const std::string& state = status.at("state").as_string();
    if (state != "queued" && state != "running") return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ADD_FAILURE() << "job " << id << " never reached a terminal state";
  return Json();
}

TEST(Service, SubmittedJobMatchesInProcessGridByteForByte) {
  SimService service(ServiceOptions{});
  const Json request = small_request();

  const HttpResponse submitted =
      service.handle_http(post("/v1/jobs", request.dump()));
  ASSERT_EQ(submitted.status, 202);
  const Json ack = Json::parse(submitted.body);
  EXPECT_EQ(ack.at("state").as_string(), "queued");
  EXPECT_EQ(ack.at("runs").as_uint(), 3u);
  const std::uint64_t id = ack.at("job").as_uint();

  const Json status = wait_for_job(service, id);
  ASSERT_EQ(status.at("state").as_string(), "done");

  const HttpResponse fetched =
      service.handle_http(get("/v1/jobs/" + std::to_string(id) + "/results"));
  ASSERT_EQ(fetched.status, 200);
  const Json doc = Json::parse(fetched.body);

  // The reference: the identical grid through the in-process engine.
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add_workload(*find_workload("g721_dec"));
  grid.add(baseline_spec("gsm_dec"));
  grid.add(greedy_spec("gsm_dec", "greedy", 2, 10));
  grid.add(baseline_spec("g721_dec"));
  const GridResult reference = grid.run(GridOptions{});

  EXPECT_EQ(doc.at("results").dump(), reference.results_json().dump());

  // run_local shares the parser and engine wiring, so it agrees too.
  const Json local = service.run_local(request);
  EXPECT_EQ(local.at("results").dump(), reference.results_json().dump());
}

TEST(Service, AdmissionRejectsBeyondTheQueueLimitWith429) {
  ServiceOptions options;
  options.queue_limit = 1;
  SimService service(options);

  // Hold the runner mid-job so submissions pile up deterministically:
  // job 1 dequeues and blocks running, job 2 occupies the whole queue.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  service.test_run_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };

  const std::string body = small_request().dump();
  const HttpResponse first = service.handle_http(post("/v1/jobs", body));
  ASSERT_EQ(first.status, 202);
  // Wait until the runner has picked job 1 up (queue drains to empty).
  for (int i = 0; i < 200; ++i) {
    const Json status = Json::parse(
        service.handle_http(get("/v1/jobs/1")).body);
    if (status.at("state").as_string() == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const HttpResponse second = service.handle_http(post("/v1/jobs", body));
  EXPECT_EQ(second.status, 202);
  const HttpResponse third = service.handle_http(post("/v1/jobs", body));
  EXPECT_EQ(third.status, 429);
  const Json rejection = Json::parse(third.body);
  EXPECT_EQ(rejection.at("error").as_string(), "job queue full");
  EXPECT_EQ(rejection.at("queue_limit").as_uint(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // Everything admitted completes; the rejected job never existed.
  EXPECT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");
  EXPECT_EQ(wait_for_job(service, 2).at("state").as_string(), "done");
  EXPECT_EQ(service.handle_http(get("/v1/jobs/3")).status, 404);
}

TEST(Service, PerRequestBudgetYieldsTimeoutTaxonomyInResults) {
  SimService service(ServiceOptions{});
  Json request = small_request();
  Json options = Json::object();
  // A budget no simulation can meet: every run must come back as a
  // timeout — a diagnosable status, not an error and not a hang.
  options["run_budget_ms"] = Json(0.000001);
  request["options"] = std::move(options);

  const HttpResponse submitted =
      service.handle_http(post("/v1/jobs", request.dump()));
  ASSERT_EQ(submitted.status, 202);
  const Json status = wait_for_job(service, 1);
  // Timeouts degrade the grid, they do not fail the job.
  ASSERT_EQ(status.at("state").as_string(), "done");

  const Json doc =
      Json::parse(service.handle_http(get("/v1/jobs/1/results")).body);
  for (const Json& run : doc.at("results").items()) {
    EXPECT_EQ(run.at("status").as_string(), "timeout");
    EXPECT_EQ(run.at("error").at("kind").as_string(), "none");
  }
  EXPECT_EQ(doc.at("engine").at("timeouts").as_uint(), 3u);
}

TEST(Service, OperatorCapClampsAnUnlimitedBudgetRequest) {
  ServiceOptions options;
  options.max_run_budget_ms = 0.000001;  // operator says: nothing runs long
  SimService service(options);
  Json request = small_request();
  Json opts = Json::object();
  opts["run_budget_ms"] = Json(0.0);  // client asks for unlimited
  request["options"] = std::move(opts);

  ASSERT_EQ(service.handle_http(post("/v1/jobs", request.dump())).status,
            202);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");
  const Json doc =
      Json::parse(service.handle_http(get("/v1/jobs/1/results")).body);
  for (const Json& run : doc.at("results").items()) {
    EXPECT_EQ(run.at("status").as_string(), "timeout");
  }
}

TEST(Service, MalformedSubmissionsAre400WithDiagnostics) {
  SimService service(ServiceOptions{});
  EXPECT_EQ(service.handle_http(post("/v1/jobs", "{not json")).status, 400);
  EXPECT_EQ(service.handle_http(post("/v1/jobs", "{}")).status, 400);
  EXPECT_EQ(
      service.handle_http(post("/v1/jobs", "{\"runs\": []}")).status, 400);

  const HttpResponse unknown_workload = service.handle_http(
      post("/v1/jobs", "{\"runs\": [{\"workload\": \"doom\"}]}"));
  EXPECT_EQ(unknown_workload.status, 400);
  EXPECT_NE(unknown_workload.body.find("doom"), std::string::npos);

  const HttpResponse typo = service.handle_http(post(
      "/v1/jobs",
      "{\"runs\": [{\"workload\": \"gsm_dec\", \"selektor\": \"greedy\"}]}"));
  EXPECT_EQ(typo.status, 400);
  EXPECT_NE(typo.body.find("selektor"), std::string::npos);

  // Nothing malformed was admitted.
  const Json list = Json::parse(service.handle_http(get("/v1/jobs")).body);
  EXPECT_EQ(list.at("jobs").size(), 0u);
}

TEST(Service, RoutesAndMethodsAreEnforced) {
  SimService service(ServiceOptions{});
  EXPECT_EQ(service.handle_http(get("/healthz")).status, 200);
  EXPECT_EQ(service.handle_http(post("/healthz", "")).status, 405);
  EXPECT_EQ(service.handle_http(get("/v1/janitor")).status, 405);
  EXPECT_EQ(service.handle_http(get("/nope")).status, 404);
  EXPECT_EQ(service.handle_http(get("/v1/jobs/7")).status, 404);
  EXPECT_EQ(service.handle_http(get("/v1/jobs/xyz")).status, 404);
  EXPECT_EQ(service.handle_http(get("/v1/jobs/7/results")).status, 404);

  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_EQ(service.handle_http(post("/v1/shutdown", "")).status, 200);
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(Service, MetricsAndTraceObserveTheJobLifecycle) {
  SimService service(ServiceOptions{});
  ASSERT_EQ(
      service.handle_http(post("/v1/jobs", small_request().dump())).status,
      202);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");

  const Json metrics =
      Json::parse(service.handle_http(get("/metrics")).body);
  EXPECT_EQ(
      metrics.at("metrics").at("serve.jobs_submitted").at("value").as_uint(),
      1u);
  EXPECT_EQ(
      metrics.at("metrics").at("serve.jobs_completed").at("value").as_uint(),
      1u);
  EXPECT_GE(metrics.at("metrics").at("grid.runs").at("value").as_uint(), 3u);
  EXPECT_EQ(metrics.at("cache").at("misses").as_uint(), 3u);

  // The trace carries the queued and run slices for job 1 on pid 1.
  const Json trace = Json::parse(service.handle_http(get("/v1/trace")).body);
  int begins = 0;
  int ends = 0;
  for (const Json& ev : trace.at("traceEvents").items()) {
    const std::string& ph = ev.at("ph").as_string();
    begins += ph == "B" ? 1 : 0;
    ends += ph == "E" ? 1 : 0;
  }
  EXPECT_EQ(begins, 2);  // "queued" and "run"
  EXPECT_EQ(ends, 2);

  const HttpResponse summary = service.handle_http(get("/v1/summary"));
  EXPECT_EQ(summary.status, 200);
  EXPECT_NE(summary.body.find("job 1: [engine] 3 runs"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP transport over real loopback sockets.

// Minimal client: one request, read to EOF (the server closes).
std::string http_round_trip(int port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, raw_request.data(), raw_request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(raw_request.size()));
  std::string response;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string request_text(const std::string& method, const std::string& target,
                         const std::string& body) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: 127.0.0.1\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

TEST(Http, ServesTheServiceOverRealSockets) {
  SimService service(ServiceOptions{});
  HttpServer::Options options;  // ephemeral port
  HttpServer server(options, [&service](const HttpRequest& request) {
    return service.handle_http(request);
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  const std::string health =
      http_round_trip(server.port(), request_text("GET", "/healthz", ""));
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);

  const std::string submitted = http_round_trip(
      server.port(),
      request_text("POST", "/v1/jobs", small_request().dump()));
  EXPECT_NE(submitted.find("HTTP/1.1 202 Accepted"), std::string::npos);

  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");
  const std::string results = http_round_trip(
      server.port(), request_text("GET", "/v1/jobs/1/results", ""));
  EXPECT_NE(results.find("HTTP/1.1 200 OK"), std::string::npos);
  // The socket-fetched body is the same document handle_http returns.
  const std::string direct =
      service.handle_http(get("/v1/jobs/1/results")).body;
  const std::size_t body_at = results.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(results.substr(body_at + 4), direct);

  const std::string missing =
      http_round_trip(server.port(), request_text("GET", "/v1/jobs/9", ""));
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);

  const std::string malformed =
      http_round_trip(server.port(), "GET missing-the-version\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400 Bad Request"), std::string::npos);

  server.stop();
}

TEST(Http, RendersResponsesWithLengthAndClose) {
  HttpResponse r;
  r.status = 429;
  r.body = "{\"error\": \"x\"}";
  const std::string text = render_http_response(r);
  EXPECT_NE(text.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(text.find("Content-Length: 14\r\n"), std::string::npos);
  EXPECT_NE(text.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Type: application/json\r\n"),
            std::string::npos);
}

}  // namespace
}  // namespace t1000::serve
