// Tests for the t1000-serve layer: SimService's API surface driven
// directly through handle_http (no socket), plus the HttpServer transport
// exercised over real loopback connections.
//
// The load-bearing claims, in order: a grid submitted to the service
// yields results byte-identical to the same grid run through the
// in-process engine; admission is a bounded queue that rejects with 429
// rather than buffering without bound; per-request budgets ride the grid's
// timeout taxonomy and are clamped by the operator's cap; and the HTTP
// layer speaks enough HTTP/1.1 for curl and the CI smoke job.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "harness/grid.hpp"
#include "harness/serialize.hpp"
#include "serve/http.hpp"
#include "workloads/workload.hpp"

namespace t1000::serve {
namespace {

// Small two-workload request shared by most tests.
Json small_request() {
  Json runs = Json::array();
  runs.push_back(to_json(baseline_spec("gsm_dec")));
  runs.push_back(to_json(greedy_spec("gsm_dec", "greedy", 2, 10)));
  runs.push_back(to_json(baseline_spec("g721_dec")));
  Json request = Json::object();
  request["runs"] = std::move(runs);
  return request;
}

HttpRequest post(std::string target, std::string body) {
  HttpRequest r;
  r.method = "POST";
  r.target = std::move(target);
  r.body = std::move(body);
  return r;
}

HttpRequest get(std::string target) {
  HttpRequest r;
  r.method = "GET";
  r.target = std::move(target);
  return r;
}

// Polls a job until it leaves queued/running; fails the test on timeout.
Json wait_for_job(SimService& service, std::uint64_t id) {
  for (int i = 0; i < 600; ++i) {
    const HttpResponse r =
        service.handle_http(get("/v1/jobs/" + std::to_string(id)));
    EXPECT_EQ(r.status, 200);
    Json status = Json::parse(r.body);
    const std::string& state = status.at("state").as_string();
    if (state != "queued" && state != "running") return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ADD_FAILURE() << "job " << id << " never reached a terminal state";
  return Json();
}

TEST(Service, SubmittedJobMatchesInProcessGridByteForByte) {
  SimService service(ServiceOptions{});
  const Json request = small_request();

  const HttpResponse submitted =
      service.handle_http(post("/v1/jobs", request.dump()));
  ASSERT_EQ(submitted.status, 202);
  const Json ack = Json::parse(submitted.body);
  EXPECT_EQ(ack.at("state").as_string(), "queued");
  EXPECT_EQ(ack.at("runs").as_uint(), 3u);
  const std::uint64_t id = ack.at("job").as_uint();

  const Json status = wait_for_job(service, id);
  ASSERT_EQ(status.at("state").as_string(), "done");

  const HttpResponse fetched =
      service.handle_http(get("/v1/jobs/" + std::to_string(id) + "/results"));
  ASSERT_EQ(fetched.status, 200);
  const Json doc = Json::parse(fetched.body);

  // The reference: the identical grid through the in-process engine.
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add_workload(*find_workload("g721_dec"));
  grid.add(baseline_spec("gsm_dec"));
  grid.add(greedy_spec("gsm_dec", "greedy", 2, 10));
  grid.add(baseline_spec("g721_dec"));
  const GridResult reference = grid.run(GridOptions{});

  EXPECT_EQ(doc.at("results").dump(), reference.results_json().dump());

  // run_local shares the parser and engine wiring, so it agrees too.
  const Json local = service.run_local(request);
  EXPECT_EQ(local.at("results").dump(), reference.results_json().dump());
}

TEST(Service, AdmissionRejectsBeyondTheQueueLimitWith429) {
  ServiceOptions options;
  options.queue_limit = 1;
  SimService service(options);

  // Hold the runner mid-job so submissions pile up deterministically:
  // job 1 dequeues and blocks running, job 2 occupies the whole queue.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  service.test_run_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };

  const std::string body = small_request().dump();
  const HttpResponse first = service.handle_http(post("/v1/jobs", body));
  ASSERT_EQ(first.status, 202);
  // Wait until the runner has picked job 1 up (queue drains to empty).
  for (int i = 0; i < 200; ++i) {
    const Json status = Json::parse(
        service.handle_http(get("/v1/jobs/1")).body);
    if (status.at("state").as_string() == "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const HttpResponse second = service.handle_http(post("/v1/jobs", body));
  EXPECT_EQ(second.status, 202);
  const HttpResponse third = service.handle_http(post("/v1/jobs", body));
  EXPECT_EQ(third.status, 429);
  const Json rejection = Json::parse(third.body);
  EXPECT_EQ(rejection.at("error").as_string(), "job queue full");
  EXPECT_EQ(rejection.at("queue_limit").as_uint(), 1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // Everything admitted completes; the rejected job never existed.
  EXPECT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");
  EXPECT_EQ(wait_for_job(service, 2).at("state").as_string(), "done");
  EXPECT_EQ(service.handle_http(get("/v1/jobs/3")).status, 404);
}

TEST(Service, PerRequestBudgetYieldsTimeoutTaxonomyInResults) {
  SimService service(ServiceOptions{});
  Json request = small_request();
  Json options = Json::object();
  // A budget no simulation can meet: every run must come back as a
  // timeout — a diagnosable status, not an error and not a hang.
  options["run_budget_ms"] = Json(0.000001);
  request["options"] = std::move(options);

  const HttpResponse submitted =
      service.handle_http(post("/v1/jobs", request.dump()));
  ASSERT_EQ(submitted.status, 202);
  const Json status = wait_for_job(service, 1);
  // Timeouts degrade the grid, they do not fail the job.
  ASSERT_EQ(status.at("state").as_string(), "done");

  const Json doc =
      Json::parse(service.handle_http(get("/v1/jobs/1/results")).body);
  for (const Json& run : doc.at("results").items()) {
    EXPECT_EQ(run.at("status").as_string(), "timeout");
    EXPECT_EQ(run.at("error").at("kind").as_string(), "none");
  }
  EXPECT_EQ(doc.at("engine").at("timeouts").as_uint(), 3u);
}

TEST(Service, OperatorCapClampsAnUnlimitedBudgetRequest) {
  ServiceOptions options;
  options.max_run_budget_ms = 0.000001;  // operator says: nothing runs long
  SimService service(options);
  Json request = small_request();
  Json opts = Json::object();
  opts["run_budget_ms"] = Json(0.0);  // client asks for unlimited
  request["options"] = std::move(opts);

  ASSERT_EQ(service.handle_http(post("/v1/jobs", request.dump())).status,
            202);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");
  const Json doc =
      Json::parse(service.handle_http(get("/v1/jobs/1/results")).body);
  for (const Json& run : doc.at("results").items()) {
    EXPECT_EQ(run.at("status").as_string(), "timeout");
  }
}

TEST(Service, MalformedSubmissionsAre400WithDiagnostics) {
  SimService service(ServiceOptions{});
  EXPECT_EQ(service.handle_http(post("/v1/jobs", "{not json")).status, 400);
  EXPECT_EQ(service.handle_http(post("/v1/jobs", "{}")).status, 400);
  EXPECT_EQ(
      service.handle_http(post("/v1/jobs", "{\"runs\": []}")).status, 400);

  const HttpResponse unknown_workload = service.handle_http(
      post("/v1/jobs", "{\"runs\": [{\"workload\": \"doom\"}]}"));
  EXPECT_EQ(unknown_workload.status, 400);
  EXPECT_NE(unknown_workload.body.find("doom"), std::string::npos);

  const HttpResponse typo = service.handle_http(post(
      "/v1/jobs",
      "{\"runs\": [{\"workload\": \"gsm_dec\", \"selektor\": \"greedy\"}]}"));
  EXPECT_EQ(typo.status, 400);
  EXPECT_NE(typo.body.find("selektor"), std::string::npos);

  // Nothing malformed was admitted.
  const Json list = Json::parse(service.handle_http(get("/v1/jobs")).body);
  EXPECT_EQ(list.at("jobs").size(), 0u);
}

TEST(Service, RoutesAndMethodsAreEnforced) {
  SimService service(ServiceOptions{});
  EXPECT_EQ(service.handle_http(get("/healthz")).status, 200);
  EXPECT_EQ(service.handle_http(post("/healthz", "")).status, 405);
  EXPECT_EQ(service.handle_http(get("/v1/janitor")).status, 405);
  EXPECT_EQ(service.handle_http(get("/nope")).status, 404);
  EXPECT_EQ(service.handle_http(get("/v1/jobs/7")).status, 404);
  EXPECT_EQ(service.handle_http(get("/v1/jobs/xyz")).status, 404);
  EXPECT_EQ(service.handle_http(get("/v1/jobs/7/results")).status, 404);

  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_EQ(service.handle_http(post("/v1/shutdown", "")).status, 200);
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(Service, MetricsAndTraceObserveTheJobLifecycle) {
  SimService service(ServiceOptions{});
  ASSERT_EQ(
      service.handle_http(post("/v1/jobs", small_request().dump())).status,
      202);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");

  const Json metrics =
      Json::parse(service.handle_http(get("/metrics")).body);
  EXPECT_EQ(
      metrics.at("metrics").at("serve.jobs_submitted").at("value").as_uint(),
      1u);
  EXPECT_EQ(
      metrics.at("metrics").at("serve.jobs_completed").at("value").as_uint(),
      1u);
  EXPECT_GE(metrics.at("metrics").at("grid.runs").at("value").as_uint(), 3u);
  EXPECT_EQ(metrics.at("cache").at("misses").as_uint(), 3u);

  // The trace carries the queued and run slices for job 1 on pid 1.
  const Json trace = Json::parse(service.handle_http(get("/v1/trace")).body);
  int begins = 0;
  int ends = 0;
  for (const Json& ev : trace.at("traceEvents").items()) {
    const std::string& ph = ev.at("ph").as_string();
    begins += ph == "B" ? 1 : 0;
    ends += ph == "E" ? 1 : 0;
  }
  EXPECT_EQ(begins, 2);  // "queued" and "run"
  EXPECT_EQ(ends, 2);

  const HttpResponse summary = service.handle_http(get("/v1/summary"));
  EXPECT_EQ(summary.status, 200);
  EXPECT_NE(summary.body.find("job 1: [engine] 3 runs"), std::string::npos);
}

TEST(Service, JobSummaryAttributesCacheDeltasPerJob) {
  SimService service(ServiceOptions{});
  EXPECT_EQ(service.handle_http(get("/v1/jobs/9/summary")).status, 404);

  const std::string body = small_request().dump();
  ASSERT_EQ(service.handle_http(post("/v1/jobs", body)).status, 202);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");
  ASSERT_EQ(service.handle_http(post("/v1/jobs", body)).status, 202);
  ASSERT_EQ(wait_for_job(service, 2).at("state").as_string(), "done");

  // Job 1 populated the shared cache, job 2 rode it: the per-job deltas
  // attribute exactly that, where the global counters only show totals.
  const Json first =
      Json::parse(service.handle_http(get("/v1/jobs/1/summary")).body);
  EXPECT_EQ(first.at("cache").at("misses").as_uint(), 3u);
  EXPECT_EQ(first.at("cache").at("stores").as_uint(), 3u);
  EXPECT_EQ(first.at("cache").at("memory_hits").as_uint(), 0u);
  const Json second =
      Json::parse(service.handle_http(get("/v1/jobs/2/summary")).body);
  EXPECT_EQ(second.at("cache").at("memory_hits").as_uint(), 3u);
  EXPECT_EQ(second.at("cache").at("misses").as_uint(), 0u);
  EXPECT_EQ(second.at("cache").at("stores").as_uint(), 0u);

  // Every job's status documents carry its trace id.
  EXPECT_NE(first.at("trace").as_string(), "0000000000000000");
  EXPECT_NE(first.at("trace").as_string(), second.at("trace").as_string());
}

TEST(Service, JobSummaryIsStatus202WhilePending) {
  ServiceOptions options;
  SimService service(options);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  service.test_run_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  ASSERT_EQ(
      service.handle_http(post("/v1/jobs", small_request().dump())).status,
      202);
  // While the job is queued/running the deltas do not exist yet; the
  // route answers 202 with the status document, like /results.
  const HttpResponse pending = service.handle_http(get("/v1/jobs/1/summary"));
  EXPECT_EQ(pending.status, 202);
  EXPECT_EQ(Json::parse(pending.body).find("cache"), nullptr);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");
  EXPECT_EQ(service.handle_http(get("/v1/jobs/1/summary")).status, 200);
}

TEST(Service, EventsRouteStreamsTheJobTraceAsNdjson) {
  SimService service(ServiceOptions{});
  EXPECT_EQ(service.handle_http(get("/v1/jobs/9/events")).status, 404);

  ASSERT_EQ(
      service.handle_http(post("/v1/jobs", small_request().dump())).status,
      202);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");

  const HttpResponse r = service.handle_http(get("/v1/jobs/1/events"));
  ASSERT_TRUE(static_cast<bool>(r.streamer));
  EXPECT_EQ(r.content_type, "application/x-ndjson");

  // The job is done, so the streamer drains the ring and returns.
  std::string collected;
  r.streamer([&collected](std::string_view chunk) {
    collected.append(chunk.data(), chunk.size());
    return true;
  });

  const std::string job_trace =
      Json::parse(service.handle_http(get("/v1/jobs/1")).body)
          .at("trace")
          .as_string();
  int begins = 0;
  int ends = 0;
  int runs = 0;
  bool saw_job = false;
  bool saw_phase = false;
  bool saw_cache = false;
  std::size_t start = 0;
  while (start < collected.size()) {
    const std::size_t nl = collected.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "stream must end on a newline";
    const Json ev = Json::parse(collected.substr(start, nl - start));
    start = nl + 1;
    if (ev.find("heartbeat") != nullptr) continue;
    // Schema: every event names the job's trace and a valid kind.
    EXPECT_EQ(ev.at("trace").as_string(), job_trace);
    EXPECT_GT(ev.at("seq").as_uint(), 0u);
    const std::string& kind = ev.at("kind").as_string();
    EXPECT_TRUE(kind == "B" || kind == "E" || kind == "i") << kind;
    begins += kind == "B" ? 1 : 0;
    ends += kind == "E" ? 1 : 0;
    const std::string& name = ev.at("name").as_string();
    saw_job = saw_job || name == "job";
    runs += (kind == "B" && name == "run") ? 1 : 0;
    saw_phase = saw_phase || name.rfind("phase.", 0) == 0;
    saw_cache = saw_cache || name.rfind("cache.", 0) == 0;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_TRUE(saw_job);
  EXPECT_EQ(runs, 3);  // one run span per spec
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_cache);
}

TEST(Service, MetricsContentNegotiatesPrometheusText) {
  SimService service(ServiceOptions{});
  ASSERT_EQ(
      service.handle_http(post("/v1/jobs", small_request().dump())).status,
      202);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");

  HttpRequest prom_request = get("/metrics");
  prom_request.headers.push_back({"accept", "text/plain"});
  const HttpResponse prom = service.handle_http(prom_request);
  EXPECT_EQ(prom.status, 200);
  EXPECT_EQ(prom.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(prom.body.find("# TYPE serve_jobs_completed_total counter\n"),
            std::string::npos);
  EXPECT_NE(prom.body.find("serve_jobs_completed_total 1\n"),
            std::string::npos);
  // The per-route and per-phase histograms render with label blocks.
  EXPECT_NE(prom.body.find("serve_route_ms_bucket{route=\"POST /v1/jobs\","),
            std::string::npos);
  EXPECT_NE(prom.body.find("exp_phase_ms_bucket{phase=\"replay\","),
            std::string::npos);
  // Cache movement rides as gauges.
  EXPECT_NE(prom.body.find("serve_cache{counter=\"misses\"} 3\n"),
            std::string::npos);

  // Default (no Accept) and JSON clients keep the JSON document.
  const HttpResponse json_default = service.handle_http(get("/metrics"));
  EXPECT_EQ(json_default.content_type, "application/json");
  const Json doc = Json::parse(json_default.body);
  EXPECT_NE(doc.find("metrics"), nullptr);
  EXPECT_NE(doc.find("cache"), nullptr);
  HttpRequest json_request = get("/metrics");
  json_request.headers.push_back({"accept", "application/json"});
  EXPECT_EQ(service.handle_http(json_request).content_type,
            "application/json");
}

TEST(Service, TraceCarriesPerJobFlowEvents) {
  SimService service(ServiceOptions{});
  ASSERT_EQ(
      service.handle_http(post("/v1/jobs", small_request().dump())).status,
      202);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");

  const std::string job_trace =
      Json::parse(service.handle_http(get("/v1/jobs/1")).body)
          .at("trace")
          .as_string();
  const Json trace = Json::parse(service.handle_http(get("/v1/trace")).body);
  int flow_starts = 0;
  int flow_finishes = 0;
  for (const Json& ev : trace.at("traceEvents").items()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph != "s" && ph != "f") continue;
    // Flow events correlate the submission with the run start via the
    // job's trace id.
    EXPECT_EQ(ev.at("id").as_string(), job_trace);
    flow_starts += ph == "s" ? 1 : 0;
    flow_finishes += ph == "f" ? 1 : 0;
  }
  EXPECT_EQ(flow_starts, 1);
  EXPECT_EQ(flow_finishes, 1);
}

// ---------------------------------------------------------------------------
// HTTP transport over real loopback sockets.

// Minimal client: one request, read to EOF (the server closes).
std::string http_round_trip(int port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, raw_request.data(), raw_request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(raw_request.size()));
  std::string response;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string request_text(const std::string& method, const std::string& target,
                         const std::string& body) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: 127.0.0.1\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

TEST(Http, ServesTheServiceOverRealSockets) {
  SimService service(ServiceOptions{});
  HttpServer::Options options;  // ephemeral port
  HttpServer server(options, [&service](const HttpRequest& request) {
    return service.handle_http(request);
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  const std::string health =
      http_round_trip(server.port(), request_text("GET", "/healthz", ""));
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);

  const std::string submitted = http_round_trip(
      server.port(),
      request_text("POST", "/v1/jobs", small_request().dump()));
  EXPECT_NE(submitted.find("HTTP/1.1 202 Accepted"), std::string::npos);

  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");
  const std::string results = http_round_trip(
      server.port(), request_text("GET", "/v1/jobs/1/results", ""));
  EXPECT_NE(results.find("HTTP/1.1 200 OK"), std::string::npos);
  // The socket-fetched body is the same document handle_http returns.
  const std::string direct =
      service.handle_http(get("/v1/jobs/1/results")).body;
  const std::size_t body_at = results.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(results.substr(body_at + 4), direct);

  const std::string missing =
      http_round_trip(server.port(), request_text("GET", "/v1/jobs/9", ""));
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);

  const std::string malformed =
      http_round_trip(server.port(), "GET missing-the-version\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400 Bad Request"), std::string::npos);

  server.stop();
}

// Splits a raw HTTP response into (head, de-chunked body); fails the test
// on a malformed chunk framing.
std::string dechunk(const std::string& raw, std::string* head) {
  const std::size_t split = raw.find("\r\n\r\n");
  EXPECT_NE(split, std::string::npos);
  *head = raw.substr(0, split);
  std::string body;
  std::size_t at = split + 4;
  for (;;) {
    const std::size_t line_end = raw.find("\r\n", at);
    EXPECT_NE(line_end, std::string::npos) << "truncated chunk size line";
    const std::size_t size =
        std::stoull(raw.substr(at, line_end - at), nullptr, 16);
    at = line_end + 2;
    if (size == 0) break;
    body += raw.substr(at, size);
    at += size + 2;  // chunk data + trailing CRLF
  }
  return body;
}

TEST(Http, StreamsChunkedResponsesOverSockets) {
  HttpServer::Options options;
  HttpServer server(options, [](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "text/plain";
    r.streamer = [](const ChunkWriter& write) {
      write("hello ");
      write("");  // empty chunks are suppressed, not stream terminators
      write("world");
    };
    return r;
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::string head;
  const std::string raw =
      http_round_trip(server.port(), request_text("GET", "/stream", ""));
  const std::string body = dechunk(raw, &head);
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_NE(head.find("Connection: close"), std::string::npos);
  EXPECT_EQ(head.find("Content-Length"), std::string::npos);
  EXPECT_EQ(body, "hello world");
  server.stop();
}

TEST(Http, EventsStreamEndToEndOverSockets) {
  SimService service(ServiceOptions{});
  HttpServer::Options options;
  HttpServer server(options, [&service](const HttpRequest& request) {
    return service.handle_http(request);
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::string submitted = http_round_trip(
      server.port(),
      request_text("POST", "/v1/jobs", small_request().dump()));
  EXPECT_NE(submitted.find("HTTP/1.1 202 Accepted"), std::string::npos);
  ASSERT_EQ(wait_for_job(service, 1).at("state").as_string(), "done");

  // The job is finished, so the stream drains and closes on its own; the
  // client just reads to EOF like any other route.
  std::string head;
  const std::string raw = http_round_trip(
      server.port(), request_text("GET", "/v1/jobs/1/events", ""));
  const std::string body = dechunk(raw, &head);
  EXPECT_NE(head.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_NE(head.find("Content-Type: application/x-ndjson"),
            std::string::npos);
  int events = 0;
  std::size_t start = 0;
  while (start < body.size()) {
    const std::size_t nl = body.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    const Json ev = Json::parse(body.substr(start, nl - start));
    start = nl + 1;
    events += ev.find("heartbeat") == nullptr ? 1 : 0;
  }
  EXPECT_GT(events, 0);
  server.stop();
}

TEST(Http, RendersResponsesWithLengthAndClose) {
  HttpResponse r;
  r.status = 429;
  r.body = "{\"error\": \"x\"}";
  const std::string text = render_http_response(r);
  EXPECT_NE(text.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(text.find("Content-Length: 14\r\n"), std::string::npos);
  EXPECT_NE(text.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Type: application/json\r\n"),
            std::string::npos);
}

}  // namespace
}  // namespace t1000::serve
