#include "harness/grid.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "harness/cache.hpp"

namespace t1000 {
namespace {

namespace fs = std::filesystem;

// A fresh, empty scratch directory that cleans up after itself.
class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("t1000-grid-test-") + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// Small but non-trivial grid: two workloads, baseline + both selectors.
ExperimentGrid small_grid() {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add_workload(*find_workload("g721_dec"));
  for (const char* name : {"gsm_dec", "g721_dec"}) {
    grid.add(baseline_spec(name));
    grid.add(greedy_spec(name, "greedy", PfuConfig::kUnlimited, 0));
    grid.add(selective_spec(name, "2pfu", 2, 10));
  }
  return grid;
}

TEST(Grid, ParallelRunMatchesSerialByteForByte) {
  const ExperimentGrid grid = small_grid();
  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 4;

  const GridResult a = grid.run(serial);
  const GridResult b = grid.run(parallel);

  EXPECT_EQ(a.engine().jobs, 1);
  EXPECT_EQ(b.engine().jobs, 4);
  // The deterministic results section must be byte-identical regardless of
  // worker count or scheduling order.
  EXPECT_EQ(a.results_json().dump(), b.results_json().dump());
  EXPECT_EQ(a.results_json().dump(2), b.results_json().dump(2));
}

TEST(Grid, ResultsAreInSpecOrder) {
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 4;
  const GridResult res = grid.run(options);
  ASSERT_EQ(res.runs().size(), 6u);
  EXPECT_EQ(res.runs()[0].spec.workload, "gsm_dec");
  EXPECT_EQ(res.runs()[0].spec.label, "baseline");
  EXPECT_EQ(res.runs()[5].spec.workload, "g721_dec");
  EXPECT_EQ(res.runs()[5].spec.label, "2pfu");
  // Lookup helpers agree with positional access.
  EXPECT_EQ(res.stats("g721_dec", "2pfu").cycles,
            res.runs()[5].outcome.stats.cycles);
  EXPECT_THROW(res.at("g721_dec", "nope"), std::out_of_range);
  EXPECT_THROW(res.at("nope", "baseline"), std::out_of_range);
}

TEST(Grid, SecondRunIsAllCacheHitsWithIdenticalOutcomes) {
  const TempDir dir("cache");
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 1;
  options.cache_dir = dir.str();

  const GridResult first = grid.run(options);
  EXPECT_EQ(first.engine().cache.misses, grid.size());
  EXPECT_EQ(first.engine().cache.hits(), 0u);
  EXPECT_EQ(first.engine().cache.stores, grid.size());
  EXPECT_EQ(first.engine().simulated, grid.size());

  // A brand-new run against the same directory: zero simulations, 100%
  // hits, byte-identical results.
  const GridResult second = grid.run(options);
  EXPECT_EQ(second.engine().cache.hits(), second.engine().runs);
  EXPECT_EQ(second.engine().cache.misses, 0u);
  EXPECT_EQ(second.engine().simulated, 0u);
  for (const RunResult& r : second.runs()) EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(first.results_json().dump(), second.results_json().dump());
}

TEST(Grid, MemoryCacheDeduplicatesRepeatedSpecsInOneRun) {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add(baseline_spec("gsm_dec", "a"));
  grid.add(baseline_spec("gsm_dec", "b"));  // same key: label is excluded
  GridOptions options;
  options.jobs = 1;  // serial, so the second lookup sees the first store
  const GridResult res = grid.run(options);
  EXPECT_EQ(res.engine().simulated, 1u);
  EXPECT_EQ(res.engine().cache.memory_hits, 1u);
  EXPECT_EQ(res.stats("gsm_dec", "a").cycles,
            res.stats("gsm_dec", "b").cycles);
}

TEST(Grid, CorruptDiskEntriesAreTreatedAsMisses) {
  const TempDir dir("corrupt");
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 1;
  options.cache_dir = dir.str();
  const GridResult first = grid.run(options);

  for (const auto& entry : fs::directory_iterator(dir.path())) {
    std::ofstream(entry.path(), std::ios::trunc) << "{not json";
  }

  const GridResult second = grid.run(options);
  EXPECT_EQ(second.engine().cache.hits(), 0u);
  EXPECT_EQ(second.engine().cache.disk_errors, grid.size());
  EXPECT_EQ(second.engine().simulated, grid.size());
  EXPECT_EQ(first.results_json().dump(), second.results_json().dump());
}

TEST(Grid, AddRejectsUnknownWorkloadsAndSelectors) {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  EXPECT_THROW(grid.add(baseline_spec("unregistered")),
               std::invalid_argument);
  // Duplicate (workload, label) pairs would make at() ambiguous.
  grid.add(baseline_spec("gsm_dec"));
  EXPECT_THROW(grid.add(baseline_spec("gsm_dec")), std::invalid_argument);
}

TEST(Grid, CacheKeyCoversIdentityButNotPresentation) {
  const std::uint64_t hash = 0x1234u;
  const std::uint64_t steps = 1000u;
  const CacheKey base = make_cache_key(baseline_spec("gsm_dec"), hash, steps);

  // Label is presentation-only: same key.
  const CacheKey relabeled =
      make_cache_key(baseline_spec("gsm_dec", "other-label"), hash, steps);
  EXPECT_EQ(base.text, relabeled.text);
  EXPECT_EQ(base.hash, relabeled.hash);

  // Every identity field must change the key (the exhaustive per-field
  // sweep lives in cache_key_test.cpp).
  EXPECT_NE(base.text,
            make_cache_key(baseline_spec("gsm_dec"), 0x9999u, steps).text);
  EXPECT_NE(base.text,
            make_cache_key(baseline_spec("gsm_dec"), hash, 999u).text);
  EXPECT_NE(base.text,
            make_cache_key(greedy_spec("gsm_dec", "", 2, 10), hash, steps).text);
  EXPECT_NE(
      make_cache_key(selective_spec("gsm_dec", "", 2, 10), hash, steps).text,
      make_cache_key(selective_spec("gsm_dec", "", 4, 10), hash, steps).text);
  EXPECT_NE(
      make_cache_key(selective_spec("gsm_dec", "", 2, 10), hash, steps).text,
      make_cache_key(selective_spec("gsm_dec", "", 2, 500), hash, steps).text);
  RunSpec longer = baseline_spec("gsm_dec");
  longer.max_cycles = 1234;
  EXPECT_NE(base.text, make_cache_key(longer, hash, steps).text);
}

TEST(Grid, ResolveJobsClampsToHardware) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(-5), resolve_jobs(0));
}

TEST(Grid, ToJsonContainsResultsAndEngineSections) {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add(baseline_spec("gsm_dec"));
  GridOptions options;
  options.jobs = 2;
  const GridResult res = grid.run(options);
  const Json j = res.to_json();
  ASSERT_NE(j.find("results"), nullptr);
  ASSERT_NE(j.find("engine"), nullptr);
  // One spec: the pool is clamped so no worker sits idle.
  EXPECT_EQ(j.at("engine").at("jobs").as_int(), 1);
  EXPECT_EQ(j.at("engine").at("runs").as_uint(), 1u);
  EXPECT_EQ(j.at("results").at(0).at("spec").at("workload").as_string(),
            "gsm_dec");
  EXPECT_GT(j.at("results").at(0).at("outcome").at("stats").at("cycles")
                .as_uint(),
            0u);
  // The engine summary line is human-oriented but must mention cache use.
  EXPECT_NE(res.engine_summary().find("cache"), std::string::npos);
}

}  // namespace
}  // namespace t1000
