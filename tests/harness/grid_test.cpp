#include "harness/grid.hpp"

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include <map>
#include <set>

#include "harness/cache.hpp"
#include "harness/serialize.hpp"
#include "obs/journal.hpp"

namespace t1000 {
namespace {

namespace fs = std::filesystem;

// A fresh, empty scratch directory that cleans up after itself.
class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("t1000-grid-test-") + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// Small but non-trivial grid: two workloads, baseline + both selectors.
ExperimentGrid small_grid() {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add_workload(*find_workload("g721_dec"));
  for (const char* name : {"gsm_dec", "g721_dec"}) {
    grid.add(baseline_spec(name));
    grid.add(greedy_spec(name, "greedy", PfuConfig::kUnlimited, 0));
    grid.add(selective_spec(name, "2pfu", 2, 10));
  }
  return grid;
}

TEST(Grid, ParallelRunMatchesSerialByteForByte) {
  const ExperimentGrid grid = small_grid();
  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 4;

  const GridResult a = grid.run(serial);
  const GridResult b = grid.run(parallel);

  EXPECT_EQ(a.engine().jobs, 1);
  EXPECT_EQ(b.engine().jobs, 4);
  // The deterministic results section must be byte-identical regardless of
  // worker count or scheduling order.
  EXPECT_EQ(a.results_json().dump(), b.results_json().dump());
  EXPECT_EQ(a.results_json().dump(2), b.results_json().dump(2));
}

TEST(Grid, ResultsAreInSpecOrder) {
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 4;
  const GridResult res = grid.run(options);
  ASSERT_EQ(res.runs().size(), 6u);
  EXPECT_EQ(res.runs()[0].spec.workload, "gsm_dec");
  EXPECT_EQ(res.runs()[0].spec.label, "baseline");
  EXPECT_EQ(res.runs()[5].spec.workload, "g721_dec");
  EXPECT_EQ(res.runs()[5].spec.label, "2pfu");
  // Lookup helpers agree with positional access.
  EXPECT_EQ(res.stats("g721_dec", "2pfu").cycles,
            res.runs()[5].outcome.stats.cycles);
  EXPECT_THROW(res.at("g721_dec", "nope"), std::out_of_range);
  EXPECT_THROW(res.at("nope", "baseline"), std::out_of_range);
}

TEST(Grid, SecondRunIsAllCacheHitsWithIdenticalOutcomes) {
  const TempDir dir("cache");
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 1;
  options.cache_dir = dir.str();

  const GridResult first = grid.run(options);
  EXPECT_EQ(first.engine().cache.misses, grid.size());
  EXPECT_EQ(first.engine().cache.hits(), 0u);
  EXPECT_EQ(first.engine().cache.stores, grid.size());
  EXPECT_EQ(first.engine().simulated, grid.size());

  // A brand-new run against the same directory: zero simulations, 100%
  // hits, byte-identical results.
  const GridResult second = grid.run(options);
  EXPECT_EQ(second.engine().cache.hits(), second.engine().runs);
  EXPECT_EQ(second.engine().cache.misses, 0u);
  EXPECT_EQ(second.engine().simulated, 0u);
  for (const RunResult& r : second.runs()) EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(first.results_json().dump(), second.results_json().dump());
}

TEST(Grid, VerifyModeRunsCleanWithoutPerturbingResults) {
  const ExperimentGrid grid = small_grid();
  GridOptions plain;
  plain.jobs = 1;
  GridOptions verified = plain;
  verified.verify = true;

  const GridResult a = grid.run(plain);
  const GridResult b = grid.run(verified);
  ASSERT_EQ(b.runs().size(), a.runs().size());
  for (std::size_t i = 0; i < a.runs().size(); ++i) {
    // Every bundled workload/selector pair verifies clean...
    EXPECT_EQ(b.runs()[i].status, RunStatus::kOk);
    // ...the flag is stamped onto the spec (and thus the results JSON)...
    EXPECT_TRUE(b.runs()[i].spec.verify);
    EXPECT_FALSE(a.runs()[i].spec.verify);
    // ...and pre-flight verification never changes what gets simulated.
    EXPECT_EQ(to_json(b.runs()[i].outcome.stats).dump(),
              to_json(a.runs()[i].outcome.stats).dump());
  }
  const Json rj = b.results_json();
  EXPECT_TRUE(rj.at(0).at("spec").at("verify").as_bool());
}

TEST(Grid, VerifiedRunsUseDistinctCacheEntries) {
  const TempDir dir("verify-cache");
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 1;
  options.cache_dir = dir.str();
  const GridResult plain = grid.run(options);
  EXPECT_EQ(plain.engine().cache.stores, grid.size());

  // The verify flag is part of the cache identity: a hit under --verify
  // must mean the entry was produced by a verified run, so the plain
  // entries above cannot satisfy it.
  options.verify = true;
  const GridResult first = grid.run(options);
  EXPECT_EQ(first.engine().cache.hits(), 0u);
  EXPECT_EQ(first.engine().cache.misses, grid.size());

  const GridResult second = grid.run(options);
  EXPECT_EQ(second.engine().cache.hits(), second.engine().runs);
  EXPECT_EQ(second.engine().simulated, 0u);
}

TEST(Grid, ObserveStampsStallBreakdownOntoEveryOutcome) {
  const ExperimentGrid grid = small_grid();
  GridOptions plain;
  plain.jobs = 2;
  GridOptions observed = plain;
  observed.observe = true;

  const GridResult a = grid.run(plain);
  const GridResult b = grid.run(observed);
  ASSERT_EQ(b.runs().size(), a.runs().size());
  StallBreakdown total;
  for (std::size_t i = 0; i < b.runs().size(); ++i) {
    const RunResult& r = b.runs()[i];
    EXPECT_EQ(r.status, RunStatus::kOk);
    // The flag is stamped onto the spec (and thus the results JSON)...
    EXPECT_TRUE(r.spec.observe);
    EXPECT_FALSE(a.runs()[i].spec.observe);
    // ...every outcome carries a breakdown satisfying the invariant...
    EXPECT_TRUE(r.outcome.observed);
    EXPECT_FALSE(a.runs()[i].outcome.observed);
    EXPECT_EQ(r.outcome.stalls.cycles, r.outcome.stats.cycles);
    EXPECT_EQ(r.outcome.stalls.cause_cycles(), r.outcome.stalls.stall_cycles());
    // ...and observation never changes what gets simulated.
    EXPECT_EQ(to_json(r.outcome.stats).dump(),
              to_json(a.runs()[i].outcome.stats).dump());
    total.accumulate(r.outcome.stalls);
  }
  // Engine-level aggregation is the element-wise sum over observed runs.
  EXPECT_EQ(b.engine().observed, grid.size());
  EXPECT_EQ(a.engine().observed, 0u);
  EXPECT_EQ(to_json(b.engine().stalls).dump(), to_json(total).dump());

  // The breakdown reaches the results and engine JSON sections.
  const Json rj = b.results_json();
  ASSERT_NE(rj.at(0).at("outcome").find("stalls"), nullptr);
  EXPECT_EQ(rj.at(0).at("outcome").at("stalls").at("cycles").as_uint(),
            b.runs()[0].outcome.stats.cycles);
  EXPECT_EQ(a.results_json().at(0).at("outcome").find("stalls"), nullptr);
  const Json ej = b.to_json().at("engine");
  EXPECT_EQ(ej.at("observed").as_uint(), grid.size());
  ASSERT_NE(ej.find("stalls"), nullptr);
  EXPECT_NE(b.engine_summary().find("stalls:"), std::string::npos);
}

TEST(Grid, ObservedRunsUseDistinctCacheEntriesAndRoundTripStalls) {
  const TempDir dir("observe-cache");
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 1;
  options.cache_dir = dir.str();
  options.observe = true;

  const GridResult first = grid.run(options);
  EXPECT_EQ(first.engine().cache.misses, grid.size());

  // A cache hit must reproduce the breakdown, not just the stats: the
  // stalls member round-trips through the disk entry.
  const GridResult second = grid.run(options);
  EXPECT_EQ(second.engine().cache.hits(), second.engine().runs);
  EXPECT_EQ(second.engine().simulated, 0u);
  EXPECT_EQ(second.engine().observed, grid.size());
  for (std::size_t i = 0; i < second.runs().size(); ++i) {
    EXPECT_TRUE(second.runs()[i].cache_hit);
    EXPECT_TRUE(second.runs()[i].outcome.observed);
    EXPECT_EQ(to_json(second.runs()[i].outcome.stalls).dump(),
              to_json(first.runs()[i].outcome.stalls).dump());
  }
  EXPECT_EQ(first.results_json().dump(), second.results_json().dump());

  // Observe is part of the cache identity: an unobserved run cannot be
  // satisfied by the observed entries above (it would otherwise silently
  // return payload the spec never asked for, or vice versa).
  options.observe = false;
  const GridResult unobserved = grid.run(options);
  EXPECT_EQ(unobserved.engine().cache.hits(), 0u);
  EXPECT_EQ(unobserved.engine().cache.misses, grid.size());
}

TEST(Grid, MetricsRegistryObservesGridExecution) {
  const TempDir dir("metrics");
  obs::MetricsRegistry metrics;
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 2;
  options.cache_dir = dir.str();
  options.metrics = &metrics;

  grid.run(options);
  EXPECT_EQ(metrics.counter("grid.runs")->value(), grid.size());
  EXPECT_EQ(metrics.counter("grid.simulated")->value(), grid.size());
  EXPECT_EQ(metrics.counter("grid.cache_hits")->value(), 0u);
  EXPECT_EQ(metrics.counter("grid.runs_incomplete")->value(), 0u);
  EXPECT_EQ(metrics.span("grid.run_wall")->count(), grid.size());
  EXPECT_EQ(metrics.histogram("grid.run_wall_ms",
                              {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
                               2000, 5000, 10000})
                ->count(),
            grid.size());

  // A long-lived registry accumulates across runs: the warm pass adds
  // all-hit traffic onto the same instruments.
  grid.run(options);
  EXPECT_EQ(metrics.counter("grid.runs")->value(), 2 * grid.size());
  EXPECT_EQ(metrics.counter("grid.simulated")->value(), grid.size());
  EXPECT_EQ(metrics.counter("grid.cache_hits")->value(), grid.size());
  const Json j = metrics.to_json();
  EXPECT_EQ(j.at("grid.runs").at("type").as_string(), "counter");
  EXPECT_EQ(j.at("grid.run_wall").at("type").as_string(), "span");
}

TEST(Grid, MemoryCacheDeduplicatesRepeatedSpecsInOneRun) {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add(baseline_spec("gsm_dec", "a"));
  grid.add(baseline_spec("gsm_dec", "b"));  // same key: label is excluded
  GridOptions options;
  options.jobs = 1;  // serial, so the second lookup sees the first store
  const GridResult res = grid.run(options);
  EXPECT_EQ(res.engine().simulated, 1u);
  EXPECT_EQ(res.engine().cache.memory_hits, 1u);
  EXPECT_EQ(res.stats("gsm_dec", "a").cycles,
            res.stats("gsm_dec", "b").cycles);
}

// A grid whose specs form real batch groups: per workload and selector,
// several machine configurations share one preparation (same policy), so
// the batching engine can time them as lanes of one sweep.
ExperimentGrid batchable_grid() {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add_workload(*find_workload("g721_dec"));
  for (const char* name : {"gsm_dec", "g721_dec"}) {
    grid.add(baseline_spec(name));
    for (const int latency : {0, 10, 100}) {
      grid.add(greedy_spec(name, "greedy-lat" + std::to_string(latency), 2,
                           latency));
      grid.add(selective_spec(name, "2pfu-lat" + std::to_string(latency), 2,
                              latency));
    }
  }
  return grid;
}

TEST(Grid, JournalRecordsRunCacheAndPhaseSpansUnderOneTrace) {
  const ExperimentGrid grid = small_grid();
  obs::Journal journal;
  GridOptions options;
  options.jobs = 2;
  options.journal = &journal;
  options.trace = obs::TraceContext{journal.new_id(), 0};
  const GridResult traced = grid.run(options);
  const GridResult plain = grid.run(GridOptions{});
  // Journaling must not perturb the deterministic results section.
  EXPECT_EQ(traced.results_json().dump(), plain.results_json().dump());

  const std::vector<obs::JournalEvent> events =
      journal.poll(0, options.trace.trace_id, std::chrono::milliseconds(0));
  ASSERT_FALSE(events.empty());

  std::map<std::uint64_t, std::string> open;  // span_id -> name
  std::set<std::uint64_t> run_ids;
  std::size_t run_spans = 0;
  std::size_t phase_spans = 0;
  std::set<std::string> phases;
  std::size_t lookups = 0;
  std::size_t stores = 0;
  for (const obs::JournalEvent& ev : events) {
    EXPECT_EQ(ev.trace_id, options.trace.trace_id);
    if (ev.kind == 'B') {
      open.emplace(ev.span_id, ev.name);
      if (ev.name == "run") {
        ++run_spans;
        run_ids.insert(ev.span_id);
        EXPECT_FALSE(ev.attrs.at("workload").as_string().empty());
        EXPECT_FALSE(ev.attrs.at("label").as_string().empty());
      } else if (ev.name.rfind("phase.", 0) == 0) {
        ++phase_spans;
        phases.insert(ev.name);
        // Every phase span parents under the run span that produced it.
        EXPECT_EQ(run_ids.count(ev.parent_id), 1u) << ev.name;
      }
    } else if (ev.kind == 'E') {
      const auto it = open.find(ev.span_id);
      ASSERT_NE(it, open.end()) << "end without begin: " << ev.name;
      EXPECT_EQ(it->second, ev.name);
      open.erase(it);
    } else if (ev.kind == 'i') {
      if (ev.name == "cache.lookup") {
        ++lookups;
        EXPECT_TRUE(ev.attrs.at("hit").is_bool());
      } else if (ev.name == "cache.store") {
        ++stores;
      }
    }
  }
  EXPECT_TRUE(open.empty());  // every begun span ended
  EXPECT_EQ(run_spans, grid.size());
  // A fresh in-memory cache: every distinct spec misses once, stores once.
  EXPECT_EQ(lookups, grid.size());
  EXPECT_EQ(stores, grid.size());
  EXPECT_GT(phase_spans, 0u);
  EXPECT_EQ(phases.count("phase.decode"), 1u);
  EXPECT_EQ(phases.count("phase.record"), 1u);
  EXPECT_EQ(phases.count("phase.replay"), 1u);
}

TEST(Grid, JournalEmitsBatchSpansForGroupedLanes) {
  const ExperimentGrid grid = batchable_grid();
  obs::Journal journal;
  GridOptions options;
  options.journal = &journal;
  options.trace = obs::TraceContext{journal.new_id(), 0};
  const GridResult res = grid.run(options);
  ASSERT_EQ(res.engine().batches, 4u);
  ASSERT_EQ(res.engine().batched_runs, 12u);

  const std::vector<obs::JournalEvent> events =
      journal.poll(0, options.trace.trace_id, std::chrono::milliseconds(0));
  std::size_t batch_begins = 0;
  std::size_t batch_ends = 0;
  std::size_t run_spans = 0;
  for (const obs::JournalEvent& ev : events) {
    if (ev.name == "batch" && ev.kind == 'B') {
      ++batch_begins;
      // All three lanes of each group missed the fresh cache together.
      EXPECT_EQ(ev.attrs.at("lanes").as_uint(), 3u);
      EXPECT_FALSE(ev.attrs.at("workload").as_string().empty());
    } else if (ev.name == "batch" && ev.kind == 'E') {
      ++batch_ends;
    } else if (ev.name == "run" && ev.kind == 'B') {
      ++run_spans;
    }
  }
  EXPECT_EQ(batch_begins, 4u);
  EXPECT_EQ(batch_ends, 4u);
  EXPECT_EQ(run_spans, 2u);  // only the baseline singletons run solo
}

TEST(Grid, JournalStaysSilentWithoutAnActiveTrace) {
  const ExperimentGrid grid = small_grid();
  obs::Journal journal;
  GridOptions options;
  options.journal = &journal;  // wired, but no trace installed
  grid.run(options);
  EXPECT_EQ(journal.events_appended(), 0u);
}

TEST(Grid, BatchedRunMatchesUnbatchedByteForByte) {
  const ExperimentGrid grid = batchable_grid();
  GridOptions batched;
  batched.jobs = 1;
  GridOptions unbatched = batched;
  unbatched.batch = false;

  const GridResult a = grid.run(batched);
  const GridResult b = grid.run(unbatched);

  // Batching engaged on one side only...
  EXPECT_GT(a.engine().batches, 0u);
  EXPECT_GT(a.engine().batched_runs, a.engine().batches);
  EXPECT_EQ(b.engine().batches, 0u);
  EXPECT_EQ(b.engine().batched_runs, 0u);
  // ...with the same amount of real work (simulations, recorded traces,
  // replays) and byte-identical deterministic results.
  EXPECT_EQ(a.engine().simulated, b.engine().simulated);
  EXPECT_EQ(a.engine().traces_recorded, b.engine().traces_recorded);
  EXPECT_EQ(a.engine().trace_replays, b.engine().trace_replays);
  EXPECT_EQ(a.results_json().dump(), b.results_json().dump());
}

TEST(Grid, BatchedRunIsScheduleIndependent) {
  const ExperimentGrid grid = batchable_grid();
  GridOptions serial;
  serial.jobs = 1;
  GridOptions parallel;
  parallel.jobs = 4;
  const GridResult a = grid.run(serial);
  const GridResult b = grid.run(parallel);
  EXPECT_EQ(a.results_json().dump(), b.results_json().dump());
}

TEST(Grid, BatchedAndUnbatchedShareCacheEntries) {
  // The cache identity is per run, not per batch: a cold batched pass must
  // populate exactly the entries a warm unbatched pass hits, and the
  // second pass simulates nothing.
  const TempDir dir("batch-cache");
  const ExperimentGrid grid = batchable_grid();
  GridOptions batched;
  batched.jobs = 1;
  batched.cache_dir = dir.str();
  GridOptions unbatched = batched;
  unbatched.batch = false;

  const GridResult cold = grid.run(batched);
  EXPECT_EQ(cold.engine().simulated, grid.size());
  EXPECT_GT(cold.engine().batches, 0u);

  const GridResult warm = grid.run(unbatched);
  EXPECT_EQ(warm.engine().simulated, 0u);
  EXPECT_EQ(warm.engine().cache.hits(), warm.engine().runs);
  // All-hit grids dispatch no batches: there is nothing left to simulate.
  EXPECT_EQ(warm.engine().batches, 0u);
  EXPECT_EQ(cold.results_json().dump(), warm.results_json().dump());
}

TEST(Grid, ObserveAndVerifyModesSurviveBatching) {
  const ExperimentGrid grid = batchable_grid();
  GridOptions batched;
  batched.jobs = 1;
  batched.observe = true;
  batched.verify = true;
  GridOptions unbatched = batched;
  unbatched.batch = false;

  const GridResult a = grid.run(batched);
  const GridResult b = grid.run(unbatched);
  EXPECT_GT(a.engine().batches, 0u);
  for (const RunResult& r : a.runs()) {
    ASSERT_EQ(r.status, RunStatus::kOk) << r.spec.workload << "/"
                                        << r.spec.label << ": " << r.error;
    EXPECT_TRUE(r.outcome.observed);
  }
  EXPECT_EQ(a.engine().observed, a.engine().runs);
  EXPECT_EQ(a.results_json().dump(), b.results_json().dump());
}

TEST(Grid, RunBudgetForcesPerRunExecution) {
  // A per-run wall-clock budget needs per-run timing, so it disables
  // batching even when the option is left on.
  const ExperimentGrid grid = batchable_grid();
  GridOptions options;
  options.jobs = 1;
  options.run_budget_ms = 1e9;  // effectively unlimited, but set
  const GridResult res = grid.run(options);
  EXPECT_EQ(res.engine().batches, 0u);
  for (const RunResult& r : res.runs()) EXPECT_EQ(r.status, RunStatus::kOk);
}

TEST(Grid, CorruptDiskEntriesAreQuarantinedOnceAndRepaired) {
  const TempDir dir("corrupt");
  const ExperimentGrid grid = small_grid();
  GridOptions options;
  options.jobs = 1;
  options.cache_dir = dir.str();
  const GridResult first = grid.run(options);

  for (const auto& entry : fs::directory_iterator(dir.path())) {
    // Leave the advisory lock file alone: it is infrastructure, not an
    // entry, and the cross-process store path keeps it flocked.
    if (entry.path().filename() == ".lock") continue;
    std::ofstream(entry.path(), std::ios::trunc) << "{not json";
  }

  // Corruption is not an I/O error: each bad entry is quarantined to
  // <entry>.corrupt, the run degrades to misses, and the stores repair
  // the entries in place.
  const GridResult second = grid.run(options);
  EXPECT_EQ(second.engine().cache.hits(), 0u);
  EXPECT_EQ(second.engine().cache.disk_errors, 0u);
  EXPECT_EQ(second.engine().cache.quarantined, grid.size());
  EXPECT_EQ(second.engine().simulated, grid.size());
  EXPECT_EQ(first.results_json().dump(), second.results_json().dump());

  std::size_t corrupt_files = 0;
  std::size_t entry_files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().filename() == ".lock") continue;
    if (entry.path().extension() == ".corrupt") {
      ++corrupt_files;
    } else {
      ++entry_files;
    }
  }
  EXPECT_EQ(corrupt_files, grid.size());
  EXPECT_EQ(entry_files, grid.size());

  // Third cold run: the repaired entries hit; nothing is re-quarantined.
  const GridResult third = grid.run(options);
  EXPECT_EQ(third.engine().cache.disk_hits, grid.size());
  EXPECT_EQ(third.engine().cache.quarantined, 0u);
  EXPECT_EQ(third.engine().simulated, 0u);
  EXPECT_EQ(first.results_json().dump(), third.results_json().dump());
}

TEST(Cache, MissingEntryIsAPlainMissNotADiskError) {
  const TempDir dir("cache-missing");
  ResultCache cache(dir.str());
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  RunOutcome out;
  EXPECT_FALSE(cache.lookup(key, &out));
  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.disk_errors, 0u);
  EXPECT_EQ(c.quarantined, 0u);
}

TEST(Cache, UnreadableEntryCountsAsDiskErrorNotMiss) {
  const TempDir dir("cache-unreadable");
  ResultCache cache(dir.str());
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  // A directory where the entry file should be: fopen succeeds on many
  // platforms but the read fails (EISDIR) — a present-but-unreadable path.
  // (chmod tricks don't work here; tests may run as root.)
  fs::create_directories(cache.entry_path(key));
  RunOutcome out;
  EXPECT_FALSE(cache.lookup(key, &out));
  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.disk_errors, 1u);
  EXPECT_EQ(c.quarantined, 0u);
}

TEST(Cache, EmptyEntryFileIsQuarantinedNotMissed) {
  const TempDir dir("cache-empty");
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  {
    ResultCache seed(dir.str());
    std::ofstream(seed.entry_path(key), std::ios::trunc);  // zero bytes
  }
  ResultCache cache(dir.str());
  RunOutcome out;
  EXPECT_FALSE(cache.lookup(key, &out));
  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.quarantined, 1u);
  EXPECT_EQ(c.disk_errors, 0u);
  EXPECT_TRUE(fs::exists(cache.entry_path(key) + ".corrupt"));
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
}

TEST(Cache, VersionMismatchedEntryIsQuarantinedAndRepairedByNextStore) {
  const TempDir dir("cache-version");
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  const RunOutcome outcome;  // a default outcome round-trips fine
  std::string entry_file;
  {
    // Store a healthy entry, then rewrite it claiming an older version.
    ResultCache seed(dir.str());
    seed.store(key, outcome);
    entry_file = seed.entry_path(key);
    std::ifstream is(entry_file);
    std::ostringstream buf;
    buf << is.rdbuf();
    Json entry = Json::parse(buf.str());
    entry["version"] = Json(1);
    std::ofstream(entry_file, std::ios::trunc) << entry.dump(2) << "\n";
  }
  ResultCache cache(dir.str());
  RunOutcome out;
  EXPECT_FALSE(cache.lookup(key, &out));
  EXPECT_EQ(cache.counters().quarantined, 1u);
  EXPECT_TRUE(fs::exists(entry_file + ".corrupt"));

  // The next store repairs the entry; a later cold cache hits on disk.
  cache.store(key, outcome);
  ResultCache fresh(dir.str());
  EXPECT_TRUE(fresh.lookup(key, &out));
  const ResultCache::Counters c = fresh.counters();
  EXPECT_EQ(c.disk_hits, 1u);
  EXPECT_EQ(c.quarantined, 0u);
  // The quarantine file is from the first pass only — never re-created.
  std::size_t corrupt_files = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    corrupt_files += e.path().extension() == ".corrupt" ? 1 : 0;
  }
  EXPECT_EQ(corrupt_files, 1u);
}

TEST(Cache, StoreOverAForeignKeyEntryCountsAsEviction) {
  const TempDir dir("cache-evict");
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  const RunOutcome outcome;
  std::string entry_file;
  {
    // A healthy entry whose recorded identity is some *other* key —
    // what a hash collision would leave at this path.
    ResultCache seed(dir.str());
    seed.store(key, outcome);
    entry_file = seed.entry_path(key);
    std::ifstream is(entry_file);
    std::ostringstream buf;
    buf << is.rdbuf();
    Json entry = Json::parse(buf.str());
    entry["key"] = Json("some other identity");
    std::ofstream(entry_file, std::ios::trunc) << entry.dump(2) << "\n";
  }
  ResultCache cache(dir.str());
  RunOutcome out;
  // A foreign occupant is a plain miss (healthy, just not ours) and is
  // left in place...
  EXPECT_FALSE(cache.lookup(key, &out));
  EXPECT_EQ(cache.counters().quarantined, 0u);
  EXPECT_EQ(cache.counters().disk_errors, 0u);
  EXPECT_TRUE(fs::exists(entry_file));
  // ...until this key stores, which replaces (evicts) it.
  cache.store(key, outcome);
  EXPECT_EQ(cache.counters().evicted, 1u);
  ResultCache fresh(dir.str());
  EXPECT_TRUE(fresh.lookup(key, &out));
}

TEST(Cache, FailedStoreLeavesNoTempDebris) {
  const TempDir dir("cache-failed-store");
  ResultCache cache(dir.str());
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  const RunOutcome outcome;

  // Cap the file-size limit below one entry so the temp-file write fails
  // mid-store (fwrite hits RLIMIT_FSIZE and returns short). SIGXFSZ must
  // be ignored or the kernel kills the process instead of failing the
  // write. This works as root, unlike permission tricks.
  struct rlimit old_limit;
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  auto old_handler = std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit tiny = old_limit;
  tiny.rlim_cur = 16;
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &tiny), 0);

  cache.store(key, outcome);

  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  std::signal(SIGXFSZ, old_handler);

  EXPECT_EQ(cache.counters().disk_errors, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
  // The regression: the failed store's unique .tmp.<pid>.<seq> file must
  // not survive — only the advisory lock file may remain in the directory.
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    EXPECT_EQ(entry.path().filename(), ".lock")
        << "leaked file: " << entry.path();
  }

  // The failure was disk-side only: the in-memory tier still has the
  // outcome, and a later store with the limit lifted repairs the disk.
  RunOutcome out;
  EXPECT_TRUE(cache.lookup(key, &out));
  cache.store(key, outcome);
  EXPECT_TRUE(fs::exists(cache.entry_path(key)));
}

TEST(Cache, QuarantineRenameFallbackCountsRemovedNotQuarantined) {
  const TempDir dir("cache-qremove");
  ResultCache cache(dir.str());
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  // A corrupt entry whose quarantine rename cannot succeed: a directory
  // squats on the .corrupt name (rename of a file over a directory fails),
  // so the cache falls back to removing the poison outright.
  std::ofstream(cache.entry_path(key)) << "{not json";
  fs::create_directories(cache.entry_path(key) + ".corrupt");

  RunOutcome out;
  EXPECT_FALSE(cache.lookup(key, &out));
  const ResultCache::Counters c = cache.counters();
  // The regression: the fallback removal used to count as `quarantined`
  // even though no quarantine file was created. It is its own outcome.
  EXPECT_EQ(c.quarantined, 0u);
  EXPECT_EQ(c.quarantine_removed, 1u);
  EXPECT_EQ(c.disk_errors, 0u);
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
}

TEST(Cache, SizeBudgetEvictsLeastRecentlyUsedEntries) {
  const TempDir dir("cache-budget");
  const RunOutcome outcome;
  const CacheKey k0 = make_cache_key(baseline_spec("gsm_dec"), 1u, 100u);
  const CacheKey k1 = make_cache_key(baseline_spec("gsm_dec"), 2u, 100u);
  const CacheKey k2 = make_cache_key(baseline_spec("gsm_dec"), 3u, 100u);

  // Size one entry, then budget for two and a half.
  std::uint64_t entry_size = 0;
  {
    ResultCache probe(dir.str());
    probe.store(k0, outcome);
    entry_size = fs::file_size(probe.entry_path(k0));
    fs::remove(probe.entry_path(k0));
  }
  ASSERT_GT(entry_size, 0u);
  const std::uint64_t budget = entry_size * 5 / 2;

  ResultCache cache(dir.str(), budget);
  EXPECT_EQ(cache.size_budget_bytes(), budget);
  cache.store(k0, outcome);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.store(k1, outcome);
  EXPECT_EQ(cache.counters().size_evicted, 0u);  // two entries fit

  // A disk hit from a fresh cache touches k0's mtime, making k1 the
  // least-recently-used entry even though it was stored later.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    ResultCache reader(dir.str(), budget);
    RunOutcome out;
    EXPECT_TRUE(reader.lookup(k0, &out));
    EXPECT_EQ(reader.counters().disk_hits, 1u);
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.store(k2, outcome);  // three entries exceed the budget

  EXPECT_EQ(cache.counters().size_evicted, 1u);
  EXPECT_TRUE(fs::exists(cache.entry_path(k0)));   // recently used: kept
  EXPECT_FALSE(fs::exists(cache.entry_path(k1)));  // LRU: evicted
  EXPECT_TRUE(fs::exists(cache.entry_path(k2)));   // just stored: exempt
  EXPECT_LE(cache.disk_usage_bytes(), budget);
}

TEST(Cache, JanitorSweepsAgedDebrisButNeverEntriesOrTheLock) {
  const TempDir dir("cache-janitor");
  ResultCache cache(dir.str());
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  cache.store(key, RunOutcome());
  // Crash debris: an orphaned writer temp and an aged quarantine file.
  const std::string temp = cache.entry_path(key) + ".tmp.99999.7";
  const std::string corrupt =
      (dir.path() / "0123456789abcdef.json.corrupt").string();
  std::ofstream(temp) << "torn";
  std::ofstream(corrupt) << "poison";

  // Nothing is older than an hour: the sweep must not touch live-looking
  // files (a concurrent writer's in-flight temp survives this way).
  const ResultCache::JanitorReport young = cache.janitor_sweep(3600.0);
  EXPECT_EQ(young.tmp_removed, 0u);
  EXPECT_EQ(young.corrupt_removed, 0u);
  EXPECT_TRUE(fs::exists(temp));
  EXPECT_TRUE(fs::exists(corrupt));

  // TTL zero sweeps all debris — and only debris.
  const ResultCache::JanitorReport swept = cache.janitor_sweep(0.0);
  EXPECT_EQ(swept.tmp_removed, 1u);
  EXPECT_EQ(swept.corrupt_removed, 1u);
  EXPECT_FALSE(fs::exists(temp));
  EXPECT_FALSE(fs::exists(corrupt));
  EXPECT_TRUE(fs::exists(cache.entry_path(key)));
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    EXPECT_TRUE(name == ".lock" ||
                entry.path() == fs::path(cache.entry_path(key)))
        << "unexpected survivor: " << entry.path();
  }
}

TEST(Cache, CountersSinceComputesMemberWiseDeltas) {
  const TempDir dir("cache-since");
  ResultCache cache(dir.str());
  const CacheKey key = make_cache_key(baseline_spec("gsm_dec"), 0x1234u, 100u);
  RunOutcome out;
  cache.lookup(key, &out);  // miss
  const ResultCache::Counters baseline = cache.counters();
  cache.store(key, out);
  cache.lookup(key, &out);  // memory hit
  const ResultCache::Counters delta = cache.counters().since(baseline);
  EXPECT_EQ(delta.misses, 0u);  // the pre-baseline miss is subtracted out
  EXPECT_EQ(delta.stores, 1u);
  EXPECT_EQ(delta.memory_hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(Grid, EngineSummaryNeverTruncates) {
  // Worst-case field widths: every counter near its maximum. The old
  // fixed 224-byte buffer truncated this; the growable formatter must
  // render every field through the trailing "replayed".
  EngineStats stats;
  stats.runs = 18446744073709551615ull;
  stats.ok = 18446744073709551615ull;
  stats.failed = 18446744073709551615ull;
  stats.timeouts = 18446744073709551615ull;
  stats.skipped = 18446744073709551615ull;
  stats.simulated = 18446744073709551615ull;
  stats.traces_recorded = 18446744073709551615ull;
  stats.trace_replays = 18446744073709551615ull;
  stats.cache.memory_hits = 18446744073709551615ull;
  stats.cache.disk_hits = 18446744073709551615ull;
  stats.cache.misses = 18446744073709551615ull;
  stats.cache.disk_errors = 18446744073709551615ull;
  stats.cache.quarantined = 18446744073709551615ull;
  stats.cache.evicted = 18446744073709551615ull;
  stats.jobs = 32768;
  stats.wall_ms = 1e15;
  const GridResult result({}, stats);
  const std::string summary = result.engine_summary();
  EXPECT_GT(summary.size(), 224u);  // would not fit the old buffer
  const std::string max = "18446744073709551615";
  EXPECT_NE(summary.find(max + " runs"), std::string::npos) << summary;
  EXPECT_NE(summary.find("quarantined"), std::string::npos) << summary;
  EXPECT_NE(summary.find("disk error"), std::string::npos) << summary;
  EXPECT_EQ(summary.rfind("replayed"), summary.size() - 8) << summary;
}

TEST(Grid, AddRejectsUnknownWorkloadsAndSelectors) {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  EXPECT_THROW(grid.add(baseline_spec("unregistered")),
               std::invalid_argument);
  // Duplicate (workload, label) pairs would make at() ambiguous.
  grid.add(baseline_spec("gsm_dec"));
  EXPECT_THROW(grid.add(baseline_spec("gsm_dec")), std::invalid_argument);
}

TEST(Grid, CacheKeyCoversIdentityButNotPresentation) {
  const std::uint64_t hash = 0x1234u;
  const std::uint64_t steps = 1000u;
  const CacheKey base = make_cache_key(baseline_spec("gsm_dec"), hash, steps);

  // Label is presentation-only: same key.
  const CacheKey relabeled =
      make_cache_key(baseline_spec("gsm_dec", "other-label"), hash, steps);
  EXPECT_EQ(base.text, relabeled.text);
  EXPECT_EQ(base.hash, relabeled.hash);

  // Every identity field must change the key (the exhaustive per-field
  // sweep lives in cache_key_test.cpp).
  EXPECT_NE(base.text,
            make_cache_key(baseline_spec("gsm_dec"), 0x9999u, steps).text);
  EXPECT_NE(base.text,
            make_cache_key(baseline_spec("gsm_dec"), hash, 999u).text);
  EXPECT_NE(base.text,
            make_cache_key(greedy_spec("gsm_dec", "", 2, 10), hash, steps).text);
  EXPECT_NE(
      make_cache_key(selective_spec("gsm_dec", "", 2, 10), hash, steps).text,
      make_cache_key(selective_spec("gsm_dec", "", 4, 10), hash, steps).text);
  EXPECT_NE(
      make_cache_key(selective_spec("gsm_dec", "", 2, 10), hash, steps).text,
      make_cache_key(selective_spec("gsm_dec", "", 2, 500), hash, steps).text);
  RunSpec longer = baseline_spec("gsm_dec");
  longer.max_cycles = 1234;
  EXPECT_NE(base.text, make_cache_key(longer, hash, steps).text);
}

TEST(Grid, ResolveJobsClampsToHardware) {
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(-5), resolve_jobs(0));
}

TEST(Grid, ToJsonContainsResultsAndEngineSections) {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add(baseline_spec("gsm_dec"));
  GridOptions options;
  options.jobs = 2;
  const GridResult res = grid.run(options);
  const Json j = res.to_json();
  ASSERT_NE(j.find("results"), nullptr);
  ASSERT_NE(j.find("engine"), nullptr);
  // One spec: the pool is clamped so no worker sits idle.
  EXPECT_EQ(j.at("engine").at("jobs").as_int(), 1);
  EXPECT_EQ(j.at("engine").at("runs").as_uint(), 1u);
  EXPECT_EQ(j.at("results").at(0).at("spec").at("workload").as_string(),
            "gsm_dec");
  EXPECT_GT(j.at("results").at(0).at("outcome").at("stats").at("cycles")
                .as_uint(),
            0u);
  // The engine summary line is human-oriented but must mention cache use.
  EXPECT_NE(res.engine_summary().find("cache"), std::string::npos);
}

}  // namespace
}  // namespace t1000
