// Fault isolation in the experiment grid: one poisoned RunSpec must not
// cost any other run its result, its determinism, or the grid itself.
//
// The core proof is differential: a paper-sized grid (every workload x
// {baseline, greedy-unlimited, greedy-2pfu}) is run clean once, then with
// one spec's fault hook throwing, at jobs=1 and jobs=4. Every non-poisoned
// outcome must be byte-identical (SimStats JSON) to the clean grid, the
// poisoned run must carry its status/taxonomy/message, and the failure
// must surface in the results JSON, the engine summary, and the
// finish_bench exit code.
#include "harness/grid.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "analysis/diagnostic.hpp"
#include "harness/serialize.hpp"
#include "sim/executor.hpp"

namespace t1000 {
namespace {

// The fig2-shaped grid over the full 12-workload suite: 3 specs per
// workload, all cache keys distinct — 36 runs.
ExperimentGrid paper_grid() {
  ExperimentGrid grid;
  grid.add_workloads(all_workloads());
  grid.add_workloads(extended_workloads());
  for (const auto* suite : {&all_workloads(), &extended_workloads()}) {
    for (const Workload& w : *suite) {
      grid.add(baseline_spec(w.name));
      grid.add(greedy_spec(w.name, "unlimited", PfuConfig::kUnlimited, 0));
      grid.add(greedy_spec(w.name, "2pfu", 2, 10));
    }
  }
  return grid;
}

// One cheap workload, two specs — enough to see isolation without paying
// for a full sweep in every taxonomy case.
ExperimentGrid tiny_grid() {
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add(baseline_spec("gsm_dec", "a"));
  grid.add(greedy_spec("gsm_dec", "b", PfuConfig::kUnlimited, 0));
  return grid;
}

// Hook that throws `thrower()` for exactly one (workload, label).
template <typename Thrower>
std::function<void(const RunSpec&)> poison(std::string workload,
                                           std::string label,
                                           Thrower thrower) {
  return [workload = std::move(workload), label = std::move(label),
          thrower](const RunSpec& spec) {
    if (spec.workload == workload && spec.label == label) thrower();
  };
}

TEST(FaultInjection, PoisonedSpecLeavesEveryOtherRunByteIdentical) {
  const ExperimentGrid grid = paper_grid();
  ASSERT_EQ(grid.size(), 36u) << "the differential proof wants the full grid";

  GridOptions clean_opts;
  clean_opts.jobs = 1;
  const GridResult clean = grid.run(clean_opts);
  ASSERT_EQ(clean.engine().ok, grid.size());

  const std::size_t poisoned = 7;  // some mid-grid spec; any index works
  const RunSpec& victim = clean.runs()[poisoned].spec;

  std::string first_results_json;
  for (const int jobs : {1, 4}) {
    GridOptions opts;
    opts.jobs = jobs;
    opts.fault_hook = poison(victim.workload, victim.label, [] {
      throw SimError("injected failure");
    });
    // The grid returns instead of throwing.
    const GridResult faulty = grid.run(opts);
    ASSERT_EQ(faulty.runs().size(), clean.runs().size());

    // Every other run: ok, and byte-identical simulated stats.
    for (std::size_t i = 0; i < clean.runs().size(); ++i) {
      if (i == poisoned) continue;
      EXPECT_EQ(faulty.runs()[i].status, RunStatus::kOk);
      EXPECT_EQ(to_json(faulty.runs()[i].outcome.stats).dump(),
                to_json(clean.runs()[i].outcome.stats).dump())
          << "run " << i << " diverged at jobs=" << jobs;
    }

    // The poisoned run carries status + taxonomy + message.
    const RunResult& bad = faulty.runs()[poisoned];
    EXPECT_EQ(bad.status, RunStatus::kError);
    EXPECT_EQ(bad.error_kind, RunErrorKind::kSim);
    EXPECT_NE(bad.error.find("injected failure"), std::string::npos);
    EXPECT_FALSE(bad.ok());

    // Engine counters tally the split.
    EXPECT_EQ(faulty.engine().ok, grid.size() - 1);
    EXPECT_EQ(faulty.engine().failed, 1u);
    EXPECT_EQ(faulty.engine().timeouts, 0u);
    EXPECT_EQ(faulty.engine().skipped, 0u);

    // The failure shows in the results JSON...
    const Json rj = faulty.results_json();
    EXPECT_EQ(rj.at(poisoned).at("status").as_string(), "error");
    EXPECT_EQ(rj.at(poisoned).at("error").at("kind").as_string(), "sim");
    EXPECT_EQ(rj.at(poisoned).at("error").at("message").as_string(),
              "injected failure");
    EXPECT_EQ(rj.at(poisoned == 0 ? 1 : 0).find("error"), nullptr);

    // ...in the engine summary...
    const std::string summary = faulty.engine_summary();
    EXPECT_NE(summary.find("1 failed"), std::string::npos) << summary;

    // ...and in the process exit code (opt-out via --keep-going).
    BenchOptions bench;
    EXPECT_EQ(finish_bench(faulty, bench), 1);
    bench.keep_going = true;
    EXPECT_EQ(finish_bench(faulty, bench), 0);

    // Failures included, the results JSON is schedule-independent:
    // jobs=4 must serialize byte-identically to jobs=1.
    if (first_results_json.empty()) {
      first_results_json = rj.dump();
    } else {
      EXPECT_EQ(rj.dump(), first_results_json);
    }

    // at() still returns the failed run; the outcome accessors refuse it.
    EXPECT_EQ(faulty.at(victim.workload, victim.label).status,
              RunStatus::kError);
    EXPECT_THROW(faulty.outcome(victim.workload, victim.label),
                 std::runtime_error);
    EXPECT_THROW(faulty.stats(victim.workload, victim.label),
                 std::runtime_error);
  }
}

TEST(FaultInjection, ErrorTaxonomyClassifiesEachKind) {
  const ExperimentGrid grid = tiny_grid();
  struct Case {
    std::function<void()> thrower;
    RunErrorKind kind;
    const char* message;
  };
  const Case cases[] = {
      {[] { throw SimError("sim boom"); }, RunErrorKind::kSim, "sim boom"},
      {[] { throw VerifyError("verify boom"); }, RunErrorKind::kVerify,
       "verify boom"},
      {[] { throw JsonError("json boom"); }, RunErrorKind::kJson, "json boom"},
      {[] { throw CacheIoError("cache boom"); }, RunErrorKind::kCacheIo,
       "cache boom"},
      {[] { throw std::runtime_error("std boom"); },
       RunErrorKind::kStdException, "std boom"},
      {[] { throw 42; }, RunErrorKind::kUnknown, "non-std::exception"},
  };
  for (const Case& c : cases) {
    GridOptions opts;
    opts.jobs = 1;
    opts.fault_hook = poison("gsm_dec", "a", c.thrower);
    const GridResult res = grid.run(opts);
    const RunResult& bad = res.at("gsm_dec", "a");
    EXPECT_EQ(bad.status, RunStatus::kError);
    EXPECT_EQ(bad.error_kind, c.kind);
    EXPECT_NE(bad.error.find(c.message), std::string::npos) << bad.error;
    EXPECT_EQ(res.at("gsm_dec", "b").status, RunStatus::kOk);
    EXPECT_EQ(res.engine().failed, 1u);
    EXPECT_EQ(res.engine().ok, 1u);
  }
}

TEST(FaultInjection, StrictModeStillRethrows) {
  const ExperimentGrid grid = tiny_grid();
  GridOptions opts;
  opts.jobs = 1;
  opts.strict = true;
  opts.fault_hook =
      poison("gsm_dec", "a", [] { throw SimError("strict boom"); });
  EXPECT_THROW(grid.run(opts), SimError);
}

TEST(FaultInjection, HookRaisedTimeoutIsRecordedAsTimeout) {
  const ExperimentGrid grid = tiny_grid();
  GridOptions opts;
  opts.jobs = 1;
  opts.fault_hook =
      poison("gsm_dec", "a", [] { throw GridTimeoutError("watchdog fired"); });
  const GridResult res = grid.run(opts);
  const RunResult& bad = res.at("gsm_dec", "a");
  EXPECT_EQ(bad.status, RunStatus::kTimeout);
  EXPECT_EQ(bad.error_kind, RunErrorKind::kNone);
  EXPECT_NE(bad.error.find("watchdog"), std::string::npos);
  EXPECT_EQ(res.engine().timeouts, 1u);
  EXPECT_EQ(res.at("gsm_dec", "b").status, RunStatus::kOk);
  EXPECT_EQ(res.results_json().at(0).at("status").as_string(), "timeout");
}

TEST(FaultInjection, RunBudgetTurnsSlowRunsIntoTimeouts) {
  // Single-spec grid so the assertion cannot flake on machine speed: the
  // injected delay dwarfs the budget no matter how slow the run itself is.
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add(baseline_spec("gsm_dec"));
  GridOptions opts;
  opts.jobs = 1;
  opts.run_budget_ms = 50.0;
  opts.fault_hook = [](const RunSpec&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  };
  const GridResult res = grid.run(opts);
  const RunResult& r = res.runs()[0];
  EXPECT_EQ(r.status, RunStatus::kTimeout);
  EXPECT_EQ(r.error_kind, RunErrorKind::kNone);
  EXPECT_NE(r.error.find("wall-clock budget"), std::string::npos) << r.error;
  EXPECT_GT(r.wall_ms, 50.0);
  EXPECT_EQ(res.engine().timeouts, 1u);
  EXPECT_EQ(res.engine().ok, 0u);
  // Timeouts count as incomplete for the bench exit code.
  BenchOptions bench;
  EXPECT_EQ(finish_bench(res, bench), 1);
}

TEST(FaultInjection, FailLimitSkipsRemainingSpecs) {
  const ExperimentGrid grid = tiny_grid();
  GridOptions opts;
  opts.jobs = 1;  // deterministic claim order: "a" fails, "b" is skipped
  opts.fail_limit = 1;
  opts.fault_hook =
      poison("gsm_dec", "a", [] { throw SimError("first failure"); });
  const GridResult res = grid.run(opts);
  EXPECT_EQ(res.at("gsm_dec", "a").status, RunStatus::kError);
  const RunResult& skipped = res.at("gsm_dec", "b");
  EXPECT_EQ(skipped.status, RunStatus::kSkipped);
  EXPECT_EQ(skipped.error_kind, RunErrorKind::kNone);
  EXPECT_NE(skipped.error.find("fail limit"), std::string::npos);
  EXPECT_EQ(res.engine().failed, 1u);
  EXPECT_EQ(res.engine().skipped, 1u);
  EXPECT_EQ(res.results_json().at(1).at("status").as_string(), "skipped");
}

TEST(FaultInjection, FailedRunIsNeverCached) {
  // A poisoned run must not memoize a bogus outcome: re-running the same
  // grid without the fault simulates and succeeds.
  ExperimentGrid grid;
  grid.add_workload(*find_workload("gsm_dec"));
  grid.add(baseline_spec("gsm_dec"));
  GridOptions opts;
  opts.jobs = 1;
  opts.fault_hook = poison("gsm_dec", "baseline",
                           [] { throw SimError("poisoned"); });
  const GridResult bad = grid.run(opts);
  EXPECT_EQ(bad.engine().failed, 1u);
  EXPECT_EQ(bad.engine().cache.stores, 0u);

  GridOptions clean;
  clean.jobs = 1;
  const GridResult good = grid.run(clean);
  EXPECT_EQ(good.engine().ok, 1u);
  EXPECT_GT(good.runs()[0].outcome.stats.cycles, 0u);
}

}  // namespace
}  // namespace t1000
