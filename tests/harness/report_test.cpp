#include "harness/report.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

TEST(Report, TableAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Numeric cells right-align under the wider number.
  EXPECT_NE(out.find("  alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  const std::size_t one = out.find("      1\n");
  EXPECT_NE(one, std::string::npos) << out;
}

TEST(Report, ShortRowsPad) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Report, RatioFormatting) {
  EXPECT_EQ(fmt_ratio(1.0), "1.000x");
  EXPECT_EQ(fmt_ratio(1.2345), "1.234x");
  EXPECT_EQ(fmt_ratio(0.5), "0.500x");
}

TEST(Report, PercentGainFormatting) {
  EXPECT_EQ(fmt_percent_gain(1.10), "+10.0%");
  EXPECT_EQ(fmt_percent_gain(0.90), "-10.0%");
  EXPECT_EQ(fmt_percent_gain(1.0), "+0.0%");
}

TEST(Report, DoubleFormatting) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
}

TEST(Report, BarScalesWithValue) {
  EXPECT_EQ(bar(10, 10, 20), std::string(20, '#'));
  EXPECT_EQ(bar(5, 10, 20), std::string(10, '#'));
  EXPECT_EQ(bar(0, 10, 20), "");
  EXPECT_EQ(bar(20, 10, 20), std::string(20, '#'));  // clamped
  EXPECT_EQ(bar(5, 0, 20), "");                      // degenerate max
}

}  // namespace
}  // namespace t1000
