// Exhaustive cache-identity coverage: every field of a RunSpec that can
// change a simulation result must change the cache key, one flip at a
// time. A field this sweep misses would silently serve stale memoized
// outcomes after that field starts varying in a bench grid — the failure
// mode this file exists to make impossible.
#include "harness/cache.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "harness/identity.hpp"
#include "harness/json.hpp"
#include "harness/serialize.hpp"
#include "sim/trace.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

constexpr std::uint64_t kHash = 0xFEEDFACEull;
constexpr std::uint64_t kSteps = 1u << 20;

RunSpec base_spec() {
  // Selective with explicit non-default-ish values so every flip below
  // lands on a *different* value.
  RunSpec spec = selective_spec("gsm_dec", "base-label", 2, 10);
  return spec;
}

using Flip = std::pair<std::string, std::function<void(RunSpec&)>>;

std::vector<Flip> identity_flips() {
  std::vector<Flip> flips;
  const auto add = [&](std::string name, std::function<void(RunSpec&)> fn) {
    flips.emplace_back(std::move(name), std::move(fn));
  };

  // RunSpec scalars.
  add("workload", [](RunSpec& s) { s.workload = "g721_dec"; });
  add("selector", [](RunSpec& s) { s.selector = Selector::kGreedy; });
  add("max_cycles", [](RunSpec& s) { s.max_cycles = 12345; });
  // A verified run is a distinct entry: a cache hit under --verify must
  // mean "this configuration was verified when it was produced".
  add("verify", [](RunSpec& s) { s.verify = true; });
  // An observed run carries extra result payload (the stall breakdown), so
  // it must never satisfy — or be satisfied by — an unobserved entry.
  add("observe", [](RunSpec& s) { s.observe = true; });

  // MachineConfig core widths and structures.
  add("fetch_width", [](RunSpec& s) { s.machine.fetch_width = 8; });
  add("decode_width", [](RunSpec& s) { s.machine.decode_width = 8; });
  add("issue_width", [](RunSpec& s) { s.machine.issue_width = 8; });
  add("commit_width", [](RunSpec& s) { s.machine.commit_width = 8; });
  add("ruu_size", [](RunSpec& s) { s.machine.ruu_size = 128; });
  add("fetch_queue_size", [](RunSpec& s) { s.machine.fetch_queue_size = 32; });
  add("int_alus", [](RunSpec& s) { s.machine.int_alus = 6; });
  add("int_mults", [](RunSpec& s) { s.machine.int_mults = 2; });
  add("mem_ports", [](RunSpec& s) { s.machine.mem_ports = 4; });
  add("max_outstanding_misses",
      [](RunSpec& s) { s.machine.max_outstanding_misses = 4; });
  add("memory_latency", [](RunSpec& s) { s.machine.memory_latency = 99; });

  // Cache geometries, every level and every dimension.
  add("il1.size_bytes", [](RunSpec& s) { s.machine.il1.size_bytes = 8192; });
  add("il1.line_bytes", [](RunSpec& s) { s.machine.il1.line_bytes = 64; });
  add("il1.assoc", [](RunSpec& s) { s.machine.il1.assoc = 2; });
  add("il1.hit_latency", [](RunSpec& s) { s.machine.il1.hit_latency = 2; });
  add("dl1.size_bytes", [](RunSpec& s) { s.machine.dl1.size_bytes = 8192; });
  add("dl1.line_bytes", [](RunSpec& s) { s.machine.dl1.line_bytes = 64; });
  add("dl1.assoc", [](RunSpec& s) { s.machine.dl1.assoc = 8; });
  add("dl1.hit_latency", [](RunSpec& s) { s.machine.dl1.hit_latency = 2; });
  add("l2.size_bytes", [](RunSpec& s) { s.machine.l2.size_bytes = 1 << 20; });
  add("l2.line_bytes", [](RunSpec& s) { s.machine.l2.line_bytes = 128; });
  add("l2.assoc", [](RunSpec& s) { s.machine.l2.assoc = 8; });
  add("l2.hit_latency", [](RunSpec& s) { s.machine.l2.hit_latency = 12; });

  // TLBs.
  add("itlb.entries", [](RunSpec& s) { s.machine.itlb.entries = 16; });
  add("itlb.page_bytes", [](RunSpec& s) { s.machine.itlb.page_bytes = 8192; });
  add("itlb.miss_latency", [](RunSpec& s) { s.machine.itlb.miss_latency = 60; });
  add("dtlb.entries", [](RunSpec& s) { s.machine.dtlb.entries = 16; });
  add("dtlb.page_bytes", [](RunSpec& s) { s.machine.dtlb.page_bytes = 8192; });
  add("dtlb.miss_latency", [](RunSpec& s) { s.machine.dtlb.miss_latency = 60; });

  // PFU bank.
  add("pfu.count", [](RunSpec& s) { s.machine.pfu.count = 4; });
  add("pfu.reconfig_latency",
      [](RunSpec& s) { s.machine.pfu.reconfig_latency = 100; });
  add("pfu.multi_cycle_ext",
      [](RunSpec& s) { s.machine.pfu.multi_cycle_ext = true; });
  add("pfu.levels_per_cycle",
      [](RunSpec& s) { s.machine.pfu.levels_per_cycle = 1; });

  // Branch predictor.
  add("branch.kind",
      [](RunSpec& s) { s.machine.branch.kind = BranchPredictorKind::kBimodal; });
  add("branch.bimodal_entries",
      [](RunSpec& s) { s.machine.branch.bimodal_entries *= 2; });
  add("branch.target_entries",
      [](RunSpec& s) { s.machine.branch.target_entries *= 2; });
  add("branch.mispredict_penalty",
      [](RunSpec& s) { s.machine.branch.mispredict_penalty += 3; });

  // Selection policy, including the nested extraction policy.
  add("policy.num_pfus", [](RunSpec& s) { s.policy.num_pfus = kUnlimitedPfus; });
  add("policy.time_threshold",
      [](RunSpec& s) { s.policy.time_threshold = 0.25; });
  add("policy.lut_budget", [](RunSpec& s) { s.policy.lut_budget = 42; });
  add("policy.use_subsequence_matrix",
      [](RunSpec& s) { s.policy.use_subsequence_matrix = false; });
  add("policy.extract.max_width",
      [](RunSpec& s) { s.policy.extract.max_width += 1; });
  add("policy.extract.min_length",
      [](RunSpec& s) { s.policy.extract.min_length += 1; });
  add("policy.extract.max_length",
      [](RunSpec& s) { s.policy.extract.max_length += 1; });
  add("policy.extract.max_inputs",
      [](RunSpec& s) { s.policy.extract.max_inputs += 1; });
  add("policy.extract.max_outputs",
      [](RunSpec& s) { s.policy.extract.max_outputs += 1; });
  add("policy.extract.require_executed",
      [](RunSpec& s) {
        s.policy.extract.require_executed = !s.policy.extract.require_executed;
      });
  return flips;
}

TEST(CacheKey, EveryIdentityFieldChangesTheKey) {
  const CacheKey base = make_cache_key(base_spec(), kHash, kSteps);
  std::set<std::string> texts = {base.text};
  for (const Flip& flip : identity_flips()) {
    RunSpec spec = base_spec();
    flip.second(spec);
    const CacheKey key = make_cache_key(spec, kHash, kSteps);
    EXPECT_NE(key.text, base.text) << "flipping " << flip.first
                                   << " did not change the cache key";
    // Each flip must also be distinguishable from every *other* flip, not
    // just from the base — catches two fields serialized into one slot.
    EXPECT_TRUE(texts.insert(key.text).second)
        << "flipping " << flip.first << " collided with another flip";
  }
}

TEST(CacheKey, TraceIdentityChangesTheKey) {
  const CacheKey base = make_cache_key(base_spec(), kHash, kSteps);
  EXPECT_NE(base.text, make_cache_key(base_spec(), kHash + 1, kSteps).text);
  EXPECT_NE(base.text, make_cache_key(base_spec(), kHash, kSteps + 1).text);
}

TEST(CacheKey, LabelIsPresentationOnly) {
  RunSpec relabeled = base_spec();
  relabeled.label = "a-different-label";
  const CacheKey a = make_cache_key(base_spec(), kHash, kSteps);
  const CacheKey b = make_cache_key(relabeled, kHash, kSteps);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(RunIdentity, BatchKeyPartitionsFlipsIntoSharedAndPerLaneFields) {
  // The lane-grouping rule: specs share a batched replay exactly when they
  // share (workload, selector, policy, verify). Reusing the exhaustive flip
  // list keeps this classification complete by construction — a new
  // identity field added there must be placed on one side of this fence.
  const std::string base_batch = RunIdentity::batch_key(base_spec());
  for (const Flip& flip : identity_flips()) {
    RunSpec spec = base_spec();
    flip.second(spec);
    const bool shared = flip.first == "workload" || flip.first == "selector" ||
                        flip.first == "verify" ||
                        flip.first.rfind("policy.", 0) == 0;
    if (shared) {
      EXPECT_NE(RunIdentity::batch_key(spec), base_batch)
          << "flipping " << flip.first << " must split the batch group";
    } else {
      // Machine config, max_cycles, and observe vary per lane: flipping
      // them must keep the spec in the same batch group.
      EXPECT_EQ(RunIdentity::batch_key(spec), base_batch)
          << "flipping " << flip.first << " must not split the batch group";
    }
  }
}

TEST(RunIdentity, PreparationKeyTracksOnlySelectorAndPolicy) {
  // The preparation (selection + rewrite + recorded trace) is a function of
  // (selector, policy) within one workload experiment; nothing else may
  // fork — or fail to fork — the memoized preparation.
  const std::string base_prep = RunIdentity::preparation_key(base_spec());
  for (const Flip& flip : identity_flips()) {
    RunSpec spec = base_spec();
    flip.second(spec);
    const bool preparation_field =
        flip.first == "selector" || flip.first.rfind("policy.", 0) == 0;
    if (preparation_field) {
      EXPECT_NE(RunIdentity::preparation_key(spec), base_prep)
          << "flipping " << flip.first << " must change the preparation";
    } else {
      EXPECT_EQ(RunIdentity::preparation_key(spec), base_prep)
          << "flipping " << flip.first << " must not change the preparation";
    }
  }
}

TEST(RunIdentity, BaselinePreparationIsSelectorIndependentOfPolicy) {
  // kNone never selects, so its preparation ignores the policy entirely —
  // baseline runs with different policies still share one recorded trace.
  RunSpec a = baseline_spec("gsm_dec");
  RunSpec b = baseline_spec("gsm_dec");
  b.policy.lut_budget = 42;
  EXPECT_EQ(RunIdentity::preparation_key(a), RunIdentity::preparation_key(b));
  EXPECT_EQ(RunIdentity::batch_key(a), RunIdentity::batch_key(b));
}

TEST(CacheKey, TextEmbedsTheFullIdentityJson) {
  // The key text is the identity document itself (self-describing cache
  // entries); spot-check that the nested sections are really in there.
  const RunSpec spec = base_spec();
  const CacheKey key = make_cache_key(spec, kHash, kSteps);
  EXPECT_NE(key.text.find("\"workload\":\"gsm_dec\""), std::string::npos);
  EXPECT_NE(key.text.find(to_json(spec.machine).dump()), std::string::npos);
  EXPECT_NE(key.text.find(to_json(spec.policy).dump()), std::string::npos);
  EXPECT_NE(key.text.find("\"trace\""), std::string::npos);
  EXPECT_EQ(key.text.find(spec.label), std::string::npos);
}

TEST(CacheKey, DecodedFormatVersionIsInTheTraceIdentity) {
  // Traces are recorded through the pre-decoded uop interpreter, so the
  // decoded-format version is result identity: a lowering change that
  // bumps kUcodeFormatVersion must invalidate every memoized outcome the
  // same way a trace-format bump does. Pin the exact serialized fields so
  // neither version can silently drop out of the key.
  const CacheKey key = make_cache_key(base_spec(), kHash, kSteps);
  EXPECT_NE(key.text.find("\"ucode\":" + std::to_string(kUcodeFormatVersion)),
            std::string::npos)
      << key.text;
  EXPECT_NE(key.text.find("\"format\":" + std::to_string(kTraceFormatVersion)),
            std::string::npos)
      << key.text;

  // Flipping the decoded-format field (the key is the identity JSON
  // itself) must change the key text — i.e. the field really participates
  // in identity rather than being decorative.
  std::string flipped = key.text;
  const std::string needle =
      "\"ucode\":" + std::to_string(kUcodeFormatVersion);
  flipped.replace(flipped.find(needle), needle.size(),
                  "\"ucode\":" + std::to_string(kUcodeFormatVersion + 1));
  EXPECT_NE(flipped, key.text);
  EXPECT_NE(to_hex(fnv1a64(flipped)), key.hash);
}

}  // namespace
}  // namespace t1000
