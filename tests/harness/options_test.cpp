// OptionParser and parse_bench_options input validation. The rejection
// paths exit(2), so they run as gtest death tests.
#include "harness/options.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/grid.hpp"

namespace t1000 {
namespace {

// argv builder: OptionParser::parse wants mutable char**.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& a : storage_) ptrs_.push_back(a.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Options, ParsesIntsStringsAndFlags) {
  long n = 0;
  std::string s;
  bool flag = false;
  OptionParser parser("prog", "");
  parser.add_int("--n", "N", "", &n);
  parser.add_string("--s", "S", "", &s);
  parser.add_flag("--flag", "", &flag);
  Argv args({"prog", "--n", "42", "--s", "hello", "--flag"});
  parser.parse(args.argc(), args.argv());
  EXPECT_EQ(n, 42);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(flag);
}

TEST(Options, NegativeAndHexIntsParse) {
  long n = 0;
  OptionParser parser("prog", "");
  parser.add_int("--n", "N", "", &n);
  Argv neg({"prog", "--n", "-7"});
  parser.parse(neg.argc(), neg.argv());
  EXPECT_EQ(n, -7);
  Argv hex({"prog", "--n", "0x10"});
  parser.parse(hex.argc(), hex.argv());
  EXPECT_EQ(n, 16);
}

using OptionsDeathTest = ::testing::Test;

TEST(OptionsDeathTest, OverflowingIntIsRejectedNotClamped) {
  long n = 0;
  OptionParser parser("prog", "");
  parser.add_int("--n", "N", "", &n);
  // Plain strtol clamps this to LONG_MAX and reports success unless errno
  // (ERANGE) is checked — the parser must reject it.
  Argv args({"prog", "--n", "999999999999999999999999999999"});
  EXPECT_EXIT(parser.parse(args.argc(), args.argv()),
              ::testing::ExitedWithCode(2), "expected an integer");
}

TEST(OptionsDeathTest, TrailingJunkIsRejected) {
  long n = 0;
  OptionParser parser("prog", "");
  parser.add_int("--n", "N", "", &n);
  Argv args({"prog", "--n", "12abc"});
  EXPECT_EXIT(parser.parse(args.argc(), args.argv()),
              ::testing::ExitedWithCode(2), "bad value '12abc'");
}

TEST(OptionsDeathTest, RangeCheckedIntReportsItsBounds) {
  long n = 0;
  OptionParser parser("prog", "");
  parser.add_int("--n", "N", "", &n, 1, 64);
  Argv args({"prog", "--n", "65"});
  EXPECT_EXIT(parser.parse(args.argc(), args.argv()),
              ::testing::ExitedWithCode(2),
              "expected an integer in \\[1, 64\\]");
}

TEST(Options, RangeCheckedIntAcceptsItsBounds) {
  long n = 0;
  OptionParser parser("prog", "");
  parser.add_int("--n", "N", "", &n, 1, 64);
  Argv lo({"prog", "--n", "1"});
  parser.parse(lo.argc(), lo.argv());
  EXPECT_EQ(n, 1);
  Argv hi({"prog", "--n", "64"});
  parser.parse(hi.argc(), hi.argv());
  EXPECT_EQ(n, 64);
}

TEST(OptionsDeathTest, BenchRejectsNegativeJobs) {
  Argv args({"bench", "--jobs", "-3"});
  EXPECT_EXIT(parse_bench_options(args.argc(), args.argv(), "bench", ""),
              ::testing::ExitedWithCode(2), "--jobs");
}

TEST(OptionsDeathTest, BenchRejectsAbsurdJobs) {
  Argv args({"bench", "--jobs", "99999999999"});
  EXPECT_EXIT(parse_bench_options(args.argc(), args.argv(), "bench", ""),
              ::testing::ExitedWithCode(2), "--jobs");
}

TEST(Options, BenchParsesFailureSemanticsFlags) {
  Argv args({"bench", "--jobs", "2", "--strict", "--keep-going",
             "--run-budget-ms", "125.5", "--no-cache"});
  const BenchOptions opts =
      parse_bench_options(args.argc(), args.argv(), "bench", "");
  EXPECT_EQ(opts.grid.jobs, 2);
  EXPECT_TRUE(opts.grid.strict);
  EXPECT_TRUE(opts.keep_going);
  EXPECT_DOUBLE_EQ(opts.grid.run_budget_ms, 125.5);
  EXPECT_TRUE(opts.grid.cache_dir.empty());
}

}  // namespace
}  // namespace t1000
