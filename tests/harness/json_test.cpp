#include "harness/json.hpp"

#include <gtest/gtest.h>

#include "harness/serialize.hpp"

namespace t1000 {
namespace {

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = Json(1);
  j["alpha"] = Json(2);
  j["mid"] = Json(3);
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, StringEscapes) {
  Json j = Json(std::string("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(j.dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  const Json parsed = Json::parse(j.dump());
  EXPECT_EQ(parsed.as_string(), j.as_string());
}

TEST(Json, RoundTripNested) {
  Json j = Json::object();
  j["list"] = Json::array_of<int>({1, 2, 3});
  j["obj"]["inner"] = Json(true);
  j["big"] = Json(std::uint64_t{1} << 62);
  j["neg"] = Json(-12345678901234LL);
  j["frac"] = Json(0.005);
  const Json parsed = Json::parse(j.dump());
  EXPECT_EQ(parsed, j);
  EXPECT_EQ(parsed.at("big").as_uint(), std::uint64_t{1} << 62);
  EXPECT_DOUBLE_EQ(parsed.at("frac").as_double(), 0.005);
  EXPECT_EQ(parsed.at("list").at(1).as_int(), 2);
  EXPECT_TRUE(parsed.at("obj").at("inner").as_bool());
}

TEST(Json, PrettyPrintParsesBack) {
  Json j = Json::object();
  j["a"] = Json::array_of<int>({1, 2});
  j["b"]["c"] = Json("x");
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), j);
}

TEST(Json, DumpIsDeterministic) {
  const auto build = [] {
    Json j = Json::object();
    j["x"] = Json(3.14159);
    j["y"] = Json::array_of<int>({5, 6});
    j["z"]["w"] = Json("s");
    return j.dump();
  };
  EXPECT_EQ(build(), build());
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
}

TEST(Json, TypeErrors) {
  EXPECT_THROW(Json(1).as_string(), JsonError);
  EXPECT_THROW(Json("x").as_int(), JsonError);
  EXPECT_THROW(Json(0.5).as_int(), JsonError);
  EXPECT_THROW(Json(-1).as_uint(), JsonError);
  EXPECT_THROW(Json::object().at("missing"), JsonError);
}

TEST(Json, FnvIsStable) {
  // Reference value pinned so cache keys survive refactors: FNV-1a("t1000").
  EXPECT_EQ(fnv1a64("t1000"), 0xfdf42e9943ef1b82ull);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(to_hex(0xdeadbeefull), "00000000deadbeef");
}

TEST(Serialize, MachineConfigIsCompleteAndStable) {
  const MachineConfig config;
  const Json j = to_json(config);
  EXPECT_EQ(j.at("issue_width").as_int(), 4);
  EXPECT_EQ(j.at("il1").at("size_bytes").as_int(), 16 * 1024);
  EXPECT_EQ(j.at("pfu").at("count").as_int(), 0);
  EXPECT_EQ(j.at("branch").at("kind").as_string(), "perfect");
  // Identical configs must serialize to identical bytes (cache keys).
  EXPECT_EQ(j.dump(), to_json(MachineConfig{}).dump());
  // Differing configs must not.
  MachineConfig other;
  other.pfu.count = 2;
  EXPECT_NE(j.dump(), to_json(other).dump());
}

TEST(Serialize, RunOutcomeRoundTrips) {
  RunOutcome out;
  out.stats.cycles = 123456789;
  out.stats.committed = 987654;
  out.stats.il1.accesses = 42;
  out.stats.il1.misses = 7;
  out.stats.dl1.writebacks = 3;
  out.stats.pfu.lookups = 10;
  out.stats.pfu.hits = 9;
  out.stats.pfu.reconfigurations = 1;
  out.stats.branch.conditional = 1000;
  out.stats.branch.cond_mispredicts = 31;
  out.num_configs = 2;
  out.num_apps = 5;
  out.lengths = {3, 4};
  out.lut_costs = {17, 105};
  out.checksum = 0xDEADBEEF;

  const RunOutcome back = run_outcome_from_json(to_json(out));
  EXPECT_EQ(back.stats.cycles, out.stats.cycles);
  EXPECT_EQ(back.stats.committed, out.stats.committed);
  EXPECT_EQ(back.stats.il1.misses, out.stats.il1.misses);
  EXPECT_EQ(back.stats.dl1.writebacks, out.stats.dl1.writebacks);
  EXPECT_EQ(back.stats.pfu.hits, out.stats.pfu.hits);
  EXPECT_EQ(back.stats.branch.cond_mispredicts,
            out.stats.branch.cond_mispredicts);
  EXPECT_EQ(back.num_configs, out.num_configs);
  EXPECT_EQ(back.num_apps, out.num_apps);
  EXPECT_EQ(back.lengths, out.lengths);
  EXPECT_EQ(back.lut_costs, out.lut_costs);
  EXPECT_EQ(back.checksum, out.checksum);
  // And the round trip is a fixed point at the byte level.
  EXPECT_EQ(to_json(back).dump(), to_json(out).dump());
}

TEST(Serialize, RunSpecSerializesSelectorAndPolicy) {
  const RunSpec spec = selective_spec("gsm_dec", "2pfu", 2, 10);
  const Json j = to_json(spec);
  EXPECT_EQ(j.at("workload").as_string(), "gsm_dec");
  EXPECT_EQ(j.at("label").as_string(), "2pfu");
  EXPECT_EQ(j.at("selector").as_string(), "selective");
  EXPECT_EQ(j.at("policy").at("num_pfus").as_int(), 2);
  EXPECT_DOUBLE_EQ(j.at("policy").at("time_threshold").as_double(), 0.005);
  EXPECT_EQ(j.at("machine").at("pfu").at("reconfig_latency").as_int(), 10);
}

}  // namespace
}  // namespace t1000
