// Round-trip pins for the spec-side deserializers (serialize.hpp).
//
// The serve layer re-hydrates RunSpecs from client JSON; these tests pin
// the contract that makes daemon results byte-identical to in-process
// ones: to_json(run_spec_from_json(to_json(spec))) is the identity, absent
// members keep struct defaults, and unknown members fail loudly instead of
// silently simulating the wrong machine.
#include "harness/serialize.hpp"

#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.hpp"
#include "harness/json.hpp"

namespace t1000 {
namespace {

TEST(SerializeRoundTrip, DefaultRunSpecSurvivesExactly) {
  RunSpec spec;
  spec.workload = "gsm_dec";
  const Json j = to_json(spec);
  const RunSpec back = run_spec_from_json(j);
  EXPECT_EQ(to_json(back).dump(), j.dump());
}

TEST(SerializeRoundTrip, FullyCustomizedRunSpecSurvivesExactly) {
  RunSpec spec = selective_spec("mpeg2_enc", "4pfu", 4, 10);
  spec.machine.fetch_width = 8;
  spec.machine.ruu_size = 128;
  spec.machine.il1.size_bytes = 64 * 1024;
  spec.machine.il1.assoc = 2;
  spec.machine.dtlb.entries = 128;
  spec.machine.pfu.multi_cycle_ext = true;
  spec.machine.pfu.levels_per_cycle = 2;
  spec.machine.branch.kind = BranchPredictorKind::kGshare;
  spec.machine.branch.mispredict_penalty = 7;
  spec.policy.time_threshold = 0.01;
  spec.policy.lut_budget = 300;
  spec.policy.extract.max_width = 12;
  spec.max_cycles = 123456789u;
  spec.verify = true;
  spec.observe = true;
  const Json j = to_json(spec);
  const RunSpec back = run_spec_from_json(j);
  EXPECT_EQ(to_json(back).dump(), j.dump());
}

TEST(SerializeRoundTrip, AbsentMembersKeepStructDefaults) {
  // A minimal request names only what it changes; everything else must
  // default exactly as the default-constructed structs do.
  const Json j = Json::parse(
      "{\"workload\": \"epic\", \"machine\": {\"issue_width\": 8}}");
  const RunSpec spec = run_spec_from_json(j);
  const RunSpec defaults;
  EXPECT_EQ(spec.workload, "epic");
  EXPECT_EQ(spec.machine.issue_width, 8);
  EXPECT_EQ(spec.machine.fetch_width, defaults.machine.fetch_width);
  EXPECT_EQ(spec.machine.il1.size_bytes, defaults.machine.il1.size_bytes);
  EXPECT_EQ(spec.selector, defaults.selector);
  EXPECT_EQ(spec.max_cycles, defaults.max_cycles);
  EXPECT_EQ(spec.verify, defaults.verify);
}

TEST(SerializeRoundTrip, UnknownMembersAreRejectedWithContext) {
  const auto expect_throw_containing = [](const std::string& text,
                                          const std::string& needle) {
    try {
      run_spec_from_json(Json::parse(text));
      FAIL() << "expected JsonError for: " << text;
    } catch (const JsonError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "diagnostic was: " << e.what();
    }
  };
  expect_throw_containing("{\"workload\": \"epic\", \"bogus\": 1}", "bogus");
  expect_throw_containing(
      "{\"workload\": \"epic\", \"machine\": {\"issue_widht\": 8}}",
      "issue_widht");
  expect_throw_containing(
      "{\"workload\": \"epic\", \"policy\": {\"extract\": {\"depth\": 3}}}",
      "depth");
  expect_throw_containing(
      "{\"workload\": \"epic\", \"machine\": {\"branch\": {\"knid\": "
      "\"gshare\"}}}",
      "knid");
}

TEST(SerializeRoundTrip, BadEnumNamesAreRejected) {
  EXPECT_THROW(run_spec_from_json(Json::parse(
                   "{\"workload\": \"epic\", \"selector\": \"wat\"}")),
               JsonError);
  EXPECT_THROW(
      run_spec_from_json(Json::parse(
          "{\"workload\": \"epic\", \"machine\": {\"branch\": {\"kind\": "
          "\"oracle\"}}}")),
      JsonError);
}

TEST(SerializeRoundTrip, BranchPredictorNamesRoundTrip) {
  for (const BranchPredictorKind kind :
       {BranchPredictorKind::kPerfect, BranchPredictorKind::kBimodal,
        BranchPredictorKind::kGshare, BranchPredictorKind::kStaticNotTaken}) {
    BranchPredictorKind back{};
    ASSERT_TRUE(branch_predictor_from_name(branch_predictor_name(kind), &back));
    EXPECT_EQ(back, kind);
  }
  BranchPredictorKind out = BranchPredictorKind::kPerfect;
  EXPECT_FALSE(branch_predictor_from_name("oracle", &out));
  EXPECT_EQ(out, BranchPredictorKind::kPerfect);  // untouched on failure
}

}  // namespace
}  // namespace t1000
