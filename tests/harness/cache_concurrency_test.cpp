// Multi-process hammer for the on-disk result cache.
//
// The cache's cross-process contract (harness/cache.hpp): any number of
// processes — a long-running daemon, CLI tools, a janitor — may share one
// cache directory, and every lookup is a hit with the stored bytes, a
// plain miss, or a clean quarantine of a genuinely bad file. Never a torn
// read, never a lost store that corrupts a neighbour, never unbounded
// growth past the size budget.
//
// This test forks writer/reader children onto one directory (fork, not
// threads: the point is separate processes with separate locks and
// separate ResultCache instances) plus a janitor child sweeping with a
// TTL, and asserts the invariant from both sides: children _exit nonzero
// on any torn outcome or I/O error, the parent checks every child's exit
// status, then verifies the directory holds no debris and respects the
// budget. Deliberately excluded from the CI TSan target list — TSan does
// not follow forks; the ASan job runs it via the full ctest suite.
#include "harness/cache.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"

namespace t1000 {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(fs::temp_directory_path() /
              (std::string("t1000-cache-hammer-") + tag)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

constexpr int kNumKeys = 8;
constexpr int kNumWorkers = 4;
constexpr int kItersPerWorker = 120;

CacheKey key_for(int i) {
  return make_cache_key(baseline_spec("gsm_dec"),
                        static_cast<std::uint64_t>(0x9000 + i), 100u);
}

// The content-keyed invariant made checkable: key i always stores exactly
// this outcome, so any hit that disagrees is a torn or crossed read.
RunOutcome outcome_for(int i) {
  RunOutcome out;
  out.checksum = static_cast<std::uint32_t>(0xC0DE0000 + i);
  out.trace_steps = static_cast<std::uint64_t>(100 + i);
  out.trace_hash = static_cast<std::uint64_t>(0xABCD0000 + i);
  out.num_configs = i;
  return out;
}

// Child exit codes, so a failed run names what broke.
enum : int {
  kChildOk = 0,
  kChildTornRead = 2,
  kChildDiskError = 3,
  kChildQuarantine = 4,
};

// One worker process: interleaved stores and lookups over the shared
// directory. Every instance of ResultCache is process-private; only the
// directory (and its advisory lock) is shared.
[[noreturn]] void worker_main(const std::string& dir,
                              std::uint64_t budget_bytes, int worker) {
  ResultCache cache(dir, budget_bytes);
  for (int iter = 0; iter < kItersPerWorker; ++iter) {
    const int i = (iter * (worker + 3) + worker) % kNumKeys;
    const CacheKey key = key_for(i);
    if ((iter + worker) % 2 == 0) {
      cache.store(key, outcome_for(i));
    } else {
      RunOutcome out;
      if (cache.lookup(key, &out)) {
        if (out.checksum != outcome_for(i).checksum ||
            out.trace_steps != outcome_for(i).trace_steps) {
          _exit(kChildTornRead);
        }
      }
    }
  }
  const ResultCache::Counters c = cache.counters();
  // Rename publication + locked stores mean no healthy-writer schedule can
  // produce a torn entry; quarantine or an I/O error here is a real bug.
  if (c.disk_errors != 0) _exit(kChildDiskError);
  if (c.quarantined != 0 || c.quarantine_removed != 0) {
    _exit(kChildQuarantine);
  }
  _exit(kChildOk);
}

// The janitor process sweeps concurrently with the writers. The TTL is
// far above one store's duration, so a live writer's in-flight temp file
// must never be swept out from under it (that would surface as a
// disk_error in the writer when its rename finds no temp).
[[noreturn]] void janitor_main(const std::string& dir) {
  ResultCache cache(dir);
  for (int pass = 0; pass < 10; ++pass) {
    cache.janitor_sweep(/*min_age_seconds=*/5.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  _exit(kChildOk);
}

TEST(CacheConcurrency, ForkedWritersReadersAndJanitorShareOneDirectory) {
  const TempDir dir("shared");
  // Budget of roughly five entries: tight enough that eviction runs under
  // contention, loose enough that hits still happen.
  std::uint64_t entry_size = 0;
  {
    ResultCache probe(dir.str());
    probe.store(key_for(0), outcome_for(0));
    entry_size = fs::file_size(probe.entry_path(key_for(0)));
  }
  ASSERT_GT(entry_size, 0u);
  const std::uint64_t budget = entry_size * 5 + entry_size / 2;

  std::vector<pid_t> children;
  for (int w = 0; w < kNumWorkers; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) worker_main(dir.str(), budget, w);
    children.push_back(pid);
  }
  {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) janitor_main(dir.str());
    children.push_back(pid);
  }

  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child killed by signal";
    EXPECT_EQ(WEXITSTATUS(status), kChildOk)
        << "child reported: 2=torn read, 3=disk error, 4=quarantine";
  }

  // Post-mortem from the parent's side: a final sweep with TTL zero must
  // find nothing — no writer died, so no orphaned temp may exist.
  ResultCache cache(dir.str(), budget);
  const ResultCache::JanitorReport debris = cache.janitor_sweep(0.0);
  EXPECT_EQ(debris.tmp_removed, 0u);
  EXPECT_EQ(debris.corrupt_removed, 0u);

  // The budget held despite every process enforcing it independently.
  EXPECT_LE(cache.disk_usage_bytes(), budget);

  // Whatever survived eviction parses and carries its key's outcome.
  int hits = 0;
  for (int i = 0; i < kNumKeys; ++i) {
    RunOutcome out;
    if (cache.lookup(key_for(i), &out)) {
      EXPECT_EQ(out.checksum, outcome_for(i).checksum);
      ++hits;
    }
  }
  const ResultCache::Counters c = cache.counters();
  EXPECT_EQ(c.disk_errors, 0u);
  EXPECT_EQ(c.quarantined, 0u);
  EXPECT_EQ(c.quarantine_removed, 0u);
  EXPECT_GT(hits, 0) << "budget admits ~5 entries; none surviving means "
                        "stores were lost, not evicted";
}

}  // namespace
}  // namespace t1000
