#include "harness/experiment.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

const Workload& small_workload() { return *find_workload("gsm_dec"); }

RunSpec selective_two() {
  return selective_spec(small_workload().name, "2pfu", 2, 10);
}

TEST(Experiment, BaselineRunHasNoConfigs) {
  WorkloadExperiment exp(small_workload());
  const RunOutcome r = exp.run(baseline_spec(small_workload().name));
  EXPECT_EQ(r.num_configs, 0);
  EXPECT_EQ(r.num_apps, 0);
  EXPECT_GT(r.stats.cycles, 0u);
  EXPECT_NE(r.checksum, 0u);
}

TEST(Experiment, GreedyAndSelectiveValidateChecksums) {
  WorkloadExperiment exp(small_workload());
  const RunOutcome base = exp.run(baseline_spec(small_workload().name));
  const RunOutcome greedy = exp.run(
      greedy_spec(small_workload().name, "best", PfuConfig::kUnlimited, 0));
  const RunOutcome sel = exp.run(selective_two());
  EXPECT_EQ(greedy.checksum, base.checksum);
  EXPECT_EQ(sel.checksum, base.checksum);
  EXPECT_GT(greedy.num_configs, 0);
  EXPECT_GT(sel.num_configs, 0);
  EXPECT_LE(sel.num_configs, greedy.num_configs);
}

TEST(Experiment, OutcomeVectorsAreParallel) {
  WorkloadExperiment exp(small_workload());
  const RunOutcome r = exp.run(
      greedy_spec(small_workload().name, "best", PfuConfig::kUnlimited, 0));
  EXPECT_EQ(static_cast<int>(r.lengths.size()), r.num_configs);
  EXPECT_EQ(static_cast<int>(r.lut_costs.size()), r.num_configs);
  EXPECT_GE(r.num_apps, r.num_configs);
}

TEST(Experiment, SpeedupIsRatioOfCycles) {
  SimStats a;
  a.cycles = 200;
  SimStats b;
  b.cycles = 100;
  EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
  EXPECT_DOUBLE_EQ(speedup(b, a), 0.5);
}

TEST(Experiment, MachineFactories) {
  const MachineConfig base = baseline_machine();
  EXPECT_EQ(base.pfu.count, 0);
  const MachineConfig two = pfu_machine(2, 42);
  EXPECT_EQ(two.pfu.count, 2);
  EXPECT_EQ(two.pfu.reconfig_latency, 42);
  EXPECT_EQ(two.issue_width, base.issue_width);  // only PFUs differ
}

TEST(Experiment, SpecFactoriesFillEveryIdentityField) {
  const RunSpec base = baseline_spec("gsm_dec");
  EXPECT_EQ(base.workload, "gsm_dec");
  EXPECT_EQ(base.label, "baseline");
  EXPECT_EQ(base.selector, Selector::kNone);
  EXPECT_EQ(base.machine.pfu.count, 0);

  const RunSpec greedy = greedy_spec("gsm_dec", "best", 2, 10);
  EXPECT_EQ(greedy.selector, Selector::kGreedy);
  EXPECT_EQ(greedy.machine.pfu.count, 2);
  EXPECT_EQ(greedy.machine.pfu.reconfig_latency, 10);

  // selective_spec keeps the policy's PFU budget in sync with the machine,
  // including the unlimited sentinel translation.
  const RunSpec sel = selective_spec("gsm_dec", "2pfu", 2, 10);
  EXPECT_EQ(sel.selector, Selector::kSelective);
  EXPECT_EQ(sel.policy.num_pfus, 2);
  const RunSpec unl =
      selective_spec("gsm_dec", "unl", PfuConfig::kUnlimited, 10);
  EXPECT_EQ(unl.machine.pfu.count, PfuConfig::kUnlimited);
  EXPECT_EQ(unl.policy.num_pfus, kUnlimitedPfus);
}

TEST(Experiment, SelectorNamesRoundTrip) {
  for (const Selector s :
       {Selector::kNone, Selector::kGreedy, Selector::kSelective}) {
    Selector parsed = Selector::kNone;
    EXPECT_TRUE(selector_from_name(selector_name(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  Selector parsed = Selector::kGreedy;
  EXPECT_FALSE(selector_from_name("bogus", &parsed));
  EXPECT_EQ(parsed, Selector::kGreedy);
}

TEST(Experiment, SelectiveHonorsThresholdPolicy) {
  WorkloadExperiment exp(small_workload());
  RunSpec impossible = selective_two();
  impossible.policy.time_threshold = 0.9;  // nothing is 90% of runtime
  const RunOutcome r = exp.run(impossible);
  EXPECT_EQ(r.num_configs, 0);
  EXPECT_EQ(r.num_apps, 0);
}

TEST(Experiment, DeterministicAcrossRepeats) {
  WorkloadExperiment exp(small_workload());
  const RunOutcome a = exp.run(selective_two());
  const RunOutcome b = exp.run(selective_two());
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.num_configs, b.num_configs);
}

}  // namespace
}  // namespace t1000
