#include "harness/experiment.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

const Workload& small_workload() { return *find_workload("gsm_dec"); }

TEST(Experiment, BaselineRunHasNoConfigs) {
  WorkloadExperiment exp(small_workload());
  const RunOutcome r = exp.run(Selector::kNone, baseline_machine());
  EXPECT_EQ(r.num_configs, 0);
  EXPECT_EQ(r.num_apps, 0);
  EXPECT_GT(r.stats.cycles, 0u);
  EXPECT_NE(r.checksum, 0u);
}

TEST(Experiment, GreedyAndSelectiveValidateChecksums) {
  WorkloadExperiment exp(small_workload());
  const RunOutcome base = exp.run(Selector::kNone, baseline_machine());
  const RunOutcome greedy =
      exp.run(Selector::kGreedy, pfu_machine(PfuConfig::kUnlimited, 0));
  SelectPolicy policy;
  policy.num_pfus = 2;
  const RunOutcome sel =
      exp.run(Selector::kSelective, pfu_machine(2, 10), policy);
  EXPECT_EQ(greedy.checksum, base.checksum);
  EXPECT_EQ(sel.checksum, base.checksum);
  EXPECT_GT(greedy.num_configs, 0);
  EXPECT_GT(sel.num_configs, 0);
  EXPECT_LE(sel.num_configs, greedy.num_configs);
}

TEST(Experiment, OutcomeVectorsAreParallel) {
  WorkloadExperiment exp(small_workload());
  const RunOutcome r =
      exp.run(Selector::kGreedy, pfu_machine(PfuConfig::kUnlimited, 0));
  EXPECT_EQ(static_cast<int>(r.lengths.size()), r.num_configs);
  EXPECT_EQ(static_cast<int>(r.lut_costs.size()), r.num_configs);
  EXPECT_GE(r.num_apps, r.num_configs);
}

TEST(Experiment, SpeedupIsRatioOfCycles) {
  SimStats a;
  a.cycles = 200;
  SimStats b;
  b.cycles = 100;
  EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
  EXPECT_DOUBLE_EQ(speedup(b, a), 0.5);
}

TEST(Experiment, MachineFactories) {
  const MachineConfig base = baseline_machine();
  EXPECT_EQ(base.pfu.count, 0);
  const MachineConfig two = pfu_machine(2, 42);
  EXPECT_EQ(two.pfu.count, 2);
  EXPECT_EQ(two.pfu.reconfig_latency, 42);
  EXPECT_EQ(two.issue_width, base.issue_width);  // only PFUs differ
}

TEST(Experiment, SelectiveHonorsThresholdPolicy) {
  WorkloadExperiment exp(small_workload());
  SelectPolicy impossible;
  impossible.num_pfus = 2;
  impossible.time_threshold = 0.9;  // nothing is 90% of runtime
  const RunOutcome r =
      exp.run(Selector::kSelective, pfu_machine(2, 10), impossible);
  EXPECT_EQ(r.num_configs, 0);
  EXPECT_EQ(r.num_apps, 0);
}

TEST(Experiment, DeterministicAcrossRepeats) {
  WorkloadExperiment exp(small_workload());
  SelectPolicy policy;
  policy.num_pfus = 2;
  const RunOutcome a =
      exp.run(Selector::kSelective, pfu_machine(2, 10), policy);
  const RunOutcome b =
      exp.run(Selector::kSelective, pfu_machine(2, 10), policy);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.num_configs, b.num_configs);
}

}  // namespace
}  // namespace t1000
