// Randomized differential testing of the uop interpreter.
//
// Drives seeded random programs (tests/support/random_program.hpp) through
// the reference interpreter (ExecMode::kReference) and the pre-decoded uop
// interpreter side by side, requiring step-for-step StepInfo equality and
// identical final architectural state. Deliberate edge cases ride along: a
// branch whose target is exactly program.size() (off the end of the last
// segment, into the halt sentinel) and fall-through into the sentinel via
// `jr $ra`.
//
// Every failure message carries the generating seed; to reproduce, run the
// failing test and feed the seed to build_random_program() under a
// debugger.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ucode_check.hpp"
#include "asmkit/program.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"
#include "sim/ucode.hpp"
#include "support/random_program.hpp"

namespace t1000 {
namespace {

using fuzz::build_random_program;

constexpr std::uint64_t kStepBound = 1u << 16;

// Drives the two interpreters in lockstep and asserts equality of every
// StepInfo field, then of the full architectural state.
void expect_lockstep(const Program& p, const std::string& tag) {
  Executor ref(p, nullptr, ExecMode::kReference);
  Executor uop(p, nullptr, ExecMode::kUcode);
  std::uint64_t steps = 0;
  while (!ref.halted() && steps < kStepBound) {
    ASSERT_FALSE(uop.halted()) << tag << " step " << steps;
    const StepInfo want = ref.step();
    const StepInfo got = uop.step();
    ASSERT_EQ(got.index, want.index) << tag << " step " << steps;
    ASSERT_EQ(got.next_index, want.next_index) << tag << " step " << steps;
    ASSERT_EQ(got.ins, want.ins) << tag << " step " << steps;
    ASSERT_EQ(got.is_mem, want.is_mem) << tag << " step " << steps;
    ASSERT_EQ(got.mem_addr, want.mem_addr) << tag << " step " << steps;
    ASSERT_EQ(got.mem_size, want.mem_size) << tag << " step " << steps;
    ASSERT_EQ(got.has_result, want.has_result) << tag << " step " << steps;
    ASSERT_EQ(got.result, want.result) << tag << " step " << steps;
    ASSERT_EQ(got.num_src, want.num_src) << tag << " step " << steps;
    ASSERT_EQ(got.src_vals, want.src_vals) << tag << " step " << steps;
    ASSERT_EQ(got.branch_taken, want.branch_taken)
        << tag << " step " << steps;
    ++steps;
  }
  ASSERT_TRUE(ref.halted()) << tag << ": generator produced a non-halting "
                            << "program (forward-only invariant broken)";
  EXPECT_EQ(uop.halted(), ref.halted()) << tag;
  EXPECT_EQ(uop.pc(), ref.pc()) << tag;
  EXPECT_EQ(uop.steps_executed(), ref.steps_executed()) << tag;
  for (Reg r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(uop.reg(r), ref.reg(r)) << tag << " $" << int(r);
  }

  // The recorded traces must also agree on their fingerprints.
  const CommittedTrace a =
      record_trace(p, nullptr, kStepBound, ExecMode::kReference);
  const CommittedTrace b =
      record_trace(p, nullptr, kStepBound, ExecMode::kUcode);
  EXPECT_EQ(a.size(), b.size()) << tag;
  EXPECT_EQ(a.checksum(), b.checksum()) << tag;
  EXPECT_EQ(a.content_hash(), b.content_hash()) << tag;
}

TEST(UcodeFuzz, RandomProgramsExecuteIdentically) {
  for (std::uint32_t seed = 1; seed <= 64; ++seed) {
    const Program p = build_random_program(seed);
    // Every generated program must be decoder-clean before it is worth
    // comparing execution: a structurally broken stream would fail both
    // paths identically and hide the bug.
    const VerifyReport decoded =
        verify_ucode(UopProgram::build(p, /*ext_table=*/nullptr));
    ASSERT_EQ(decoded.errors(), 0) << "seed " << seed;
    expect_lockstep(p, "seed " + std::to_string(seed));
  }
}

TEST(UcodeFuzz, BranchToProgramSizeHitsTheSentinel) {
  // A taken branch whose target is exactly program.size(): off the end of
  // the last segment, straight onto the halt sentinel. The reference
  // interpreter halts; the uop path must land on kSentinel and do the
  // same, committing the identical off-the-end sentinel step.
  Program p;
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/8, 0, 1));
  p.text.push_back(make_branch1(Opcode::kBgtz, /*rs=*/8,
                                /*target=*/3));  // == size()
  p.text.push_back(make_halt());  // skipped by the taken branch
  expect_lockstep(p, "branch-to-size");
}

TEST(UcodeFuzz, JrRaFallsOffTheEndIdentically) {
  // reset() seeds $ra one past the end of text; `jr $ra` is the clean
  // "return from main" halt. Both interpreters must commit the same
  // synthetic sentinel step.
  Program p;
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/2, 0, 7));
  p.text.push_back(make_jr(/*rs=*/31));
  expect_lockstep(p, "jr-ra");
}

TEST(UcodeFuzz, SingleInstructionProgram) {
  Program p;
  p.text.push_back(make_halt());
  expect_lockstep(p, "single-halt");
}

TEST(UcodeFuzz, StepBoundExhaustsIdentically) {
  // An infinite loop must exhaust the step bound identically in both
  // modes: run() returns max_steps with halted() still false.
  Program p;
  p.text.push_back(make_jump(Opcode::kJ, 0));
  Executor ref(p, nullptr, ExecMode::kReference);
  Executor uop(p, nullptr, ExecMode::kUcode);
  EXPECT_EQ(ref.run(1000), 1000u);
  EXPECT_EQ(uop.run(1000), 1000u);
  EXPECT_FALSE(ref.halted());
  EXPECT_FALSE(uop.halted());
  EXPECT_EQ(uop.pc(), ref.pc());
}

}  // namespace
}  // namespace t1000
