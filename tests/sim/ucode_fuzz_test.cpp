// Randomized differential testing of the uop interpreter.
//
// Generates verifier-legal programs from a seeded RNG — random basic
// blocks of ALU/shift/immediate/memory work stitched together with
// forward-only control flow (termination by construction), plus a bounded
// backward loop template — and drives the reference interpreter
// (ExecMode::kReference) and the pre-decoded uop interpreter side by side,
// requiring step-for-step StepInfo equality and identical final
// architectural state. Deliberate edge cases ride along: a branch whose
// target is exactly program.size() (off the end of the last segment, into
// the halt sentinel) and fall-through into the sentinel via `jr $ra`.
//
// Every failure message carries the generating seed; to reproduce, run the
// failing test and feed the seed to build_random_program() under a
// debugger.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "analysis/ucode_check.hpp"
#include "asmkit/program.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

constexpr std::uint64_t kStepBound = 1u << 16;

// Registers the generator allocates: $t0..$t7 scratch plus $s0 as the
// loop counter and $a0 as the memory base. $zero is deliberately included
// as an occasional destination (architectural no-op — the interpreters
// must agree on it too).
constexpr Reg kScratch[] = {8, 9, 10, 11, 12, 13, 14, 15, 0};

Reg pick_reg(std::mt19937& rng) {
  return kScratch[rng() % (sizeof kScratch / sizeof kScratch[0])];
}

// One random non-control instruction. Memory operations stay inside the
// 256-byte data segment through $a0 (loaded with kDataBase and never
// clobbered — the generator excludes $a0 from destinations).
Instruction random_straightline(std::mt19937& rng) {
  switch (rng() % 8) {
    case 0:
      return make_r(static_cast<Opcode>(rng() % 12), pick_reg(rng),
                    pick_reg(rng), pick_reg(rng));
    case 1: {
      const Opcode shifts[] = {Opcode::kSll, Opcode::kSrl, Opcode::kSra};
      // Shift amounts beyond 31 exercise the decoder's pre-masking.
      return make_shift(shifts[rng() % 3], pick_reg(rng), pick_reg(rng),
                        static_cast<int>(rng() % 64));
    }
    case 2: {
      const Opcode imms[] = {Opcode::kAddiu, Opcode::kAndi, Opcode::kOri,
                             Opcode::kXori, Opcode::kSlti, Opcode::kSltiu};
      return make_imm(imms[rng() % 6], pick_reg(rng), pick_reg(rng),
                      static_cast<std::int32_t>(rng() % 0x10000) - 0x8000);
    }
    case 3:
      return make_lui(pick_reg(rng),
                      static_cast<std::int32_t>(rng() % 0x10000));
    case 4: {
      const Opcode loads[] = {Opcode::kLw, Opcode::kLh, Opcode::kLhu,
                              Opcode::kLb, Opcode::kLbu};
      const int pick = static_cast<int>(rng() % 5);
      const int align = pick == 0 ? 4 : pick <= 2 ? 2 : 1;
      const std::int32_t disp =
          static_cast<std::int32_t>(rng() % (256 / align)) * align;
      return make_mem(loads[pick], pick_reg(rng), /*base=*/4, disp);
    }
    case 5: {
      const Opcode stores[] = {Opcode::kSw, Opcode::kSh, Opcode::kSb};
      const int pick = static_cast<int>(rng() % 3);
      const int align = pick == 0 ? 4 : pick == 1 ? 2 : 1;
      const std::int32_t disp =
          static_cast<std::int32_t>(rng() % (256 / align)) * align;
      return make_mem(stores[pick], pick_reg(rng), /*base=*/4, disp);
    }
    case 6:
      return make_nop();
    default:
      return make_r(Opcode::kMul, pick_reg(rng), pick_reg(rng),
                    pick_reg(rng));
  }
}

// A random program: straight-line filler broken by forward-only branches
// (every control target is strictly greater than the branch's own index,
// so the program terminates no matter what the data does), one bounded
// countdown loop in the middle, `halt` at the end. 256 bytes of zeroed
// data backs the memory traffic.
Program build_random_program(std::uint32_t seed) {
  std::mt19937 rng(seed);
  Program p;
  p.data.assign(256, 0);

  const int body = 24 + static_cast<int>(rng() % 40);
  // Prologue: $a0 <- kDataBase, $s0 <- small loop count. The loop header
  // index is known up front: two prologue instructions, then `body`
  // random ones, then the loop.
  p.text.push_back(make_lui(/*rd=*/4, kDataBase >> 16));
  p.text.push_back(
      make_imm(Opcode::kAddiu, /*rd=*/16, 0, 3 + (rng() % 5)));

  for (int i = 0; i < body; ++i) {
    // ~1 in 6 instructions is a forward branch over a small random gap.
    if (rng() % 6 == 0) {
      const auto here = static_cast<std::int32_t>(p.text.size());
      const std::int32_t target = here + 1 + static_cast<std::int32_t>(rng() % 4);
      switch (rng() % 4) {
        case 0:
          p.text.push_back(make_branch2(Opcode::kBeq, pick_reg(rng),
                                        pick_reg(rng), target));
          break;
        case 1:
          p.text.push_back(make_branch2(Opcode::kBne, pick_reg(rng),
                                        pick_reg(rng), target));
          break;
        case 2:
          p.text.push_back(
              make_branch1(Opcode::kBgtz, pick_reg(rng), target));
          break;
        default:
          p.text.push_back(make_jump(Opcode::kJ, target));
          break;
      }
    } else {
      p.text.push_back(random_straightline(rng));
    }
  }
  // Pad past any forward target that may point into [size, size+4).
  for (int i = 0; i < 4; ++i) p.text.push_back(random_straightline(rng));

  // The bounded loop: body of random work, then $s0-- / bgtz back up.
  const auto loop_head = static_cast<std::int32_t>(p.text.size());
  const int loop_body = 2 + static_cast<int>(rng() % 6);
  for (int i = 0; i < loop_body; ++i) {
    p.text.push_back(random_straightline(rng));
  }
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/16, /*rs=*/16, -1));
  p.text.push_back(make_branch1(Opcode::kBgtz, /*rs=*/16, loop_head));
  p.text.push_back(make_halt());
  return p;
}

// Drives the two interpreters in lockstep and asserts equality of every
// StepInfo field, then of the full architectural state.
void expect_lockstep(const Program& p, const std::string& tag) {
  Executor ref(p, nullptr, ExecMode::kReference);
  Executor uop(p, nullptr, ExecMode::kUcode);
  std::uint64_t steps = 0;
  while (!ref.halted() && steps < kStepBound) {
    ASSERT_FALSE(uop.halted()) << tag << " step " << steps;
    const StepInfo want = ref.step();
    const StepInfo got = uop.step();
    ASSERT_EQ(got.index, want.index) << tag << " step " << steps;
    ASSERT_EQ(got.next_index, want.next_index) << tag << " step " << steps;
    ASSERT_EQ(got.ins, want.ins) << tag << " step " << steps;
    ASSERT_EQ(got.is_mem, want.is_mem) << tag << " step " << steps;
    ASSERT_EQ(got.mem_addr, want.mem_addr) << tag << " step " << steps;
    ASSERT_EQ(got.mem_size, want.mem_size) << tag << " step " << steps;
    ASSERT_EQ(got.has_result, want.has_result) << tag << " step " << steps;
    ASSERT_EQ(got.result, want.result) << tag << " step " << steps;
    ASSERT_EQ(got.num_src, want.num_src) << tag << " step " << steps;
    ASSERT_EQ(got.src_vals, want.src_vals) << tag << " step " << steps;
    ASSERT_EQ(got.branch_taken, want.branch_taken)
        << tag << " step " << steps;
    ++steps;
  }
  ASSERT_TRUE(ref.halted()) << tag << ": generator produced a non-halting "
                            << "program (forward-only invariant broken)";
  EXPECT_EQ(uop.halted(), ref.halted()) << tag;
  EXPECT_EQ(uop.pc(), ref.pc()) << tag;
  EXPECT_EQ(uop.steps_executed(), ref.steps_executed()) << tag;
  for (Reg r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(uop.reg(r), ref.reg(r)) << tag << " $" << int(r);
  }

  // The recorded traces must also agree on their fingerprints.
  const CommittedTrace a =
      record_trace(p, nullptr, kStepBound, ExecMode::kReference);
  const CommittedTrace b =
      record_trace(p, nullptr, kStepBound, ExecMode::kUcode);
  EXPECT_EQ(a.size(), b.size()) << tag;
  EXPECT_EQ(a.checksum(), b.checksum()) << tag;
  EXPECT_EQ(a.content_hash(), b.content_hash()) << tag;
}

TEST(UcodeFuzz, RandomProgramsExecuteIdentically) {
  for (std::uint32_t seed = 1; seed <= 64; ++seed) {
    const Program p = build_random_program(seed);
    // Every generated program must be decoder-clean before it is worth
    // comparing execution: a structurally broken stream would fail both
    // paths identically and hide the bug.
    const VerifyReport decoded =
        verify_ucode(UopProgram::build(p, /*ext_table=*/nullptr));
    ASSERT_EQ(decoded.errors(), 0) << "seed " << seed;
    expect_lockstep(p, "seed " + std::to_string(seed));
  }
}

TEST(UcodeFuzz, BranchToProgramSizeHitsTheSentinel) {
  // A taken branch whose target is exactly program.size(): off the end of
  // the last segment, straight onto the halt sentinel. The reference
  // interpreter halts; the uop path must land on kSentinel and do the
  // same, committing the identical off-the-end sentinel step.
  Program p;
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/8, 0, 1));
  p.text.push_back(make_branch1(Opcode::kBgtz, /*rs=*/8,
                                /*target=*/3));  // == size()
  p.text.push_back(make_halt());  // skipped by the taken branch
  expect_lockstep(p, "branch-to-size");
}

TEST(UcodeFuzz, JrRaFallsOffTheEndIdentically) {
  // reset() seeds $ra one past the end of text; `jr $ra` is the clean
  // "return from main" halt. Both interpreters must commit the same
  // synthetic sentinel step.
  Program p;
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/2, 0, 7));
  p.text.push_back(make_jr(/*rs=*/31));
  expect_lockstep(p, "jr-ra");
}

TEST(UcodeFuzz, SingleInstructionProgram) {
  Program p;
  p.text.push_back(make_halt());
  expect_lockstep(p, "single-halt");
}

TEST(UcodeFuzz, StepBoundExhaustsIdentically) {
  // An infinite loop must exhaust the step bound identically in both
  // modes: run() returns max_steps with halted() still false.
  Program p;
  p.text.push_back(make_jump(Opcode::kJ, 0));
  Executor ref(p, nullptr, ExecMode::kReference);
  Executor uop(p, nullptr, ExecMode::kUcode);
  EXPECT_EQ(ref.run(1000), 1000u);
  EXPECT_EQ(uop.run(1000), 1000u);
  EXPECT_FALSE(ref.halted());
  EXPECT_FALSE(uop.halted());
  EXPECT_EQ(uop.pc(), ref.pc());
}

}  // namespace
}  // namespace t1000
