#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"

namespace t1000 {
namespace {

// Runs `source` to halt and returns the executor for state inspection.
Executor run_asm(const std::string& source, const ExtInstTable* ext = nullptr,
                 std::uint64_t max_steps = 100000) {
  static std::vector<std::unique_ptr<Program>> keep_alive;
  keep_alive.push_back(std::make_unique<Program>(assemble(source)));
  Executor e(*keep_alive.back(), ext);
  e.run(max_steps);
  EXPECT_TRUE(e.halted()) << "program did not halt";
  return e;
}

TEST(Executor, AluBasics) {
  const Executor e = run_asm(R"(
      li $t0, 21
      li $t1, 2
      addu $v0, $t0, $t1
      subu $v1, $t0, $t1
      mul  $a0, $t0, $t1
      halt
  )");
  EXPECT_EQ(e.reg(2), 23u);
  EXPECT_EQ(e.reg(3), 19u);
  EXPECT_EQ(e.reg(4), 42u);
}

TEST(Executor, ZeroRegisterIsImmutable) {
  const Executor e = run_asm(R"(
      li $zero, 55
      addiu $zero, $zero, 7
      addu $v0, $zero, $zero
      halt
  )");
  EXPECT_EQ(e.reg(0), 0u);
  EXPECT_EQ(e.reg(2), 0u);
}

TEST(Executor, ShiftsAndLogic) {
  const Executor e = run_asm(R"(
      li $t0, 0xF0
      sll $t1, $t0, 4
      srl $t2, $t0, 4
      li $t3, -16
      sra $t4, $t3, 2
      and $t5, $t0, $t1
      or  $t6, $t0, $t2
      nor $t7, $zero, $zero
      halt
  )");
  EXPECT_EQ(e.reg(9), 0xF00u);
  EXPECT_EQ(e.reg(10), 0xFu);
  EXPECT_EQ(e.reg(12), static_cast<std::uint32_t>(-4));
  EXPECT_EQ(e.reg(13), 0u);
  EXPECT_EQ(e.reg(14), 0xFFu);
  EXPECT_EQ(e.reg(15), 0xFFFFFFFFu);
}

TEST(Executor, VariableShifts) {
  const Executor e = run_asm(R"(
      li $t0, 1
      li $t1, 12
      sllv $t2, $t0, $t1
      srlv $t3, $t2, $t1
      halt
  )");
  EXPECT_EQ(e.reg(10), 1u << 12);
  EXPECT_EQ(e.reg(11), 1u);
}

TEST(Executor, ImmediateExtensionSemantics) {
  const Executor e = run_asm(R"(
      li   $t0, 0
      addiu $t1, $t0, -1     # sign-extended
      ori  $t2, $t0, 0xFFFF  # zero-extended
      slti $t3, $t1, 0       # -1 < 0 signed
      sltiu $t4, $t1, 1      # 0xFFFFFFFF < 1 unsigned? no
      halt
  )");
  EXPECT_EQ(e.reg(9), 0xFFFFFFFFu);
  EXPECT_EQ(e.reg(10), 0xFFFFu);
  EXPECT_EQ(e.reg(11), 1u);
  EXPECT_EQ(e.reg(12), 0u);
}

TEST(Executor, LoadsAndStores) {
  const Executor e = run_asm(R"(
        .data
  buf:  .word 0x11223344
  bytes:.byte 0x80, 0x7F
  half: .half 0x8001
        .text
        la  $t0, buf
        lw  $v0, 0($t0)
        la  $t1, bytes
        lb  $t2, 0($t1)    # sign-extends 0x80
        lbu $t3, 0($t1)
        lb  $t4, 1($t1)
        la  $t5, half
        lh  $t6, 0($t5)    # sign-extends 0x8001
        lhu $t7, 0($t5)
        sw  $v0, 16($t0)
        lw  $v1, 16($t0)
        sb  $t3, 20($t0)
        lbu $a0, 20($t0)
        sh  $t7, 24($t0)
        lhu $a1, 24($t0)
        halt
  )");
  EXPECT_EQ(e.reg(2), 0x11223344u);
  EXPECT_EQ(e.reg(10), 0xFFFFFF80u);
  EXPECT_EQ(e.reg(11), 0x80u);
  EXPECT_EQ(e.reg(12), 0x7Fu);
  EXPECT_EQ(e.reg(14), 0xFFFF8001u);
  EXPECT_EQ(e.reg(15), 0x8001u);
  EXPECT_EQ(e.reg(3), 0x11223344u);
  EXPECT_EQ(e.reg(4), 0x80u);
  EXPECT_EQ(e.reg(5), 0x8001u);
}

TEST(Executor, BranchLoop) {
  const Executor e = run_asm(R"(
        li $t0, 0
        li $t1, 10
  loop: addiu $t0, $t0, 1
        bne $t0, $t1, loop
        move $v0, $t0
        halt
  )");
  EXPECT_EQ(e.reg(2), 10u);
}

TEST(Executor, SignedBranchVariants) {
  const Executor e = run_asm(R"(
        li $t0, -5
        li $v0, 0
        bltz $t0, a
        li $v0, 99
  a:    bgez $t0, bad
        bgtz $t0, bad
        blez $t0, b
        li $v0, 98
  b:    li $t1, 1
        bgtz $t1, c
        li $v0, 97
  c:    halt
  bad:  li $v0, 96
        halt
  )");
  EXPECT_EQ(e.reg(2), 0u);
}

TEST(Executor, JalAndJrImplementCalls) {
  const Executor e = run_asm(R"(
  main: li $a0, 5
        jal double
        move $v1, $v0
        jal double
        halt
  double: addu $v0, $a0, $a0
        jr $ra
  )");
  // Both calls double $a0=5 -> 10.
  EXPECT_EQ(e.reg(2), 10u);
  EXPECT_EQ(e.reg(3), 10u);
}

TEST(Executor, JalrThroughFunctionPointer) {
  const Executor e = run_asm(R"(
        .data
  fptr: .word target
        .text
  main: la $t0, fptr
        lw $t1, 0($t0)
        jalr $ra, $t1
        halt
  target: li $v0, 77
        jr $ra
  )");
  EXPECT_EQ(e.reg(2), 77u);
}

TEST(Executor, MainSymbolIsEntryPoint) {
  const Executor e = run_asm(R"(
  helper: li $v0, 1
        jr $ra
  main: li $v0, 2
        halt
  )");
  EXPECT_EQ(e.reg(2), 2u);
}

TEST(Executor, ReturnFromEntryHalts) {
  Program p = assemble("main: li $v0, 3\n jr $ra\n");
  Executor e(p);
  e.run(100);
  EXPECT_TRUE(e.halted());
  EXPECT_EQ(e.reg(2), 3u);
}

TEST(Executor, ExtInstructionEvaluatesMicroProgram) {
  ExtInstTable table;
  // (in0 << 4) + in1
  const ConfId id = table.intern(ExtInstDef(
      2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 4},
          {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  const Executor e = run_asm(R"(
      li $t0, 3
      li $t1, 100
      ext $v0, $t0, $t1, 0
      halt
  )",
                             &table);
  EXPECT_EQ(id, 0);
  EXPECT_EQ(e.reg(2), (3u << 4) + 100);
}

TEST(Executor, ExtWithoutTableThrows) {
  Program p = assemble("ext $v0, $t0, $t1, 0\nhalt");
  Executor e(p);
  EXPECT_THROW(e.step(), SimError);
}

TEST(Executor, ExtWithUnknownConfThrows) {
  ExtInstTable table;
  table.intern(ExtInstDef(1, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 1}}));
  Program p = assemble("ext $v0, $t0, $t1, 7\nhalt");
  Executor e(p, &table);
  EXPECT_THROW(e.step(), SimError);
}

TEST(Executor, StepAfterHaltThrows) {
  Program p = assemble("halt");
  Executor e(p);
  e.run(10);
  EXPECT_TRUE(e.halted());
  EXPECT_THROW(e.step(), SimError);
}

TEST(Executor, WildJumpThrows) {
  Program p = assemble("li $t0, 0x123\njr $t0\nhalt");
  Executor e(p);
  EXPECT_THROW(e.run(10), SimError);
}

TEST(Executor, RunHonorsStepBound) {
  Program p = assemble("loop: j loop");
  Executor e(p);
  EXPECT_EQ(e.run(100), 100u);
  EXPECT_FALSE(e.halted());
}

TEST(Executor, StepInfoReportsMemoryAccess) {
  Program p = assemble(R"(
      .data
  w:  .word 42
      .text
      la $t0, w
      lw $v0, 0($t0)
      sw $v0, 4($t0)
      halt
  )");
  Executor e(p);
  e.step();  // lui
  e.step();  // ori
  const StepInfo load = e.step();
  EXPECT_TRUE(load.is_mem);
  EXPECT_EQ(load.mem_addr, kDataBase);
  EXPECT_EQ(load.mem_size, 4);
  EXPECT_TRUE(load.has_result);
  EXPECT_EQ(load.result, 42u);
  const StepInfo store = e.step();
  EXPECT_TRUE(store.is_mem);
  EXPECT_EQ(store.mem_addr, kDataBase + 4);
  EXPECT_FALSE(store.has_result);
}

TEST(Executor, StepInfoReportsBranchOutcome) {
  Program p = assemble(R"(
      li $t0, 1
      bne $t0, $zero, skip
      nop
  skip: beq $t0, $zero, skip
      halt
  )");
  Executor e(p);
  e.step();
  const StepInfo taken = e.step();
  EXPECT_TRUE(taken.branch_taken);
  EXPECT_EQ(taken.next_index, 3);
  const StepInfo not_taken = e.step();
  EXPECT_FALSE(not_taken.branch_taken);
  EXPECT_EQ(not_taken.next_index, 4);
}

}  // namespace
}  // namespace t1000
