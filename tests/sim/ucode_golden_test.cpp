// Golden-fixture regression tests for the uop decoder.
//
// Each scenario pins the full disassembly of one decode corner — segment
// table, uop kinds, resolved operands and immediates, rewritten control
// targets, sentinel placement — against a checked-in fixture under
// tests/sim/golden/. Any lowering change that moves the decoded form must
// be deliberate: regenerate with
//
//   T1000_REGEN_GOLDEN=1 ./ucode_test --gtest_filter='UcodeGolden.*'
//
// and review the fixture diff (a changed fixture almost always means
// kUcodeFormatVersion must be bumped too — the cache-key suite pins that
// version into memoized-run identity).
//
// The corners:
//  * block ending in a conditional branch (fall-through + taken edges);
//  * an EXT instruction mid-block, its Conf id resolved against a table;
//  * a single-instruction block sitting at the very end of the program.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asmkit/assembler.hpp"
#include "isa/extdef.hpp"
#include "sim/ucode.hpp"

namespace t1000 {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(T1000_GOLDEN_DIR) + "/" + name + ".txt";
}

void check_golden(const std::string& name, const Program& program,
                  const ExtInstTable* table) {
  const UopProgram ucode = UopProgram::build(program, table);
  const std::string text = disassemble(ucode);
  const std::string path = golden_path(name);

  if (std::getenv("T1000_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.is_open()) << "cannot write " << path;
    os << text;
    return;
  }

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.is_open())
      << "missing fixture " << path
      << " — regenerate with T1000_REGEN_GOLDEN=1 (see file comment)";
  std::ostringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(buf.str(), text)
      << name << ": decoded form drifted from the golden fixture; if the "
      << "lowering change is intended, regenerate with T1000_REGEN_GOLDEN=1, "
      << "review, and bump kUcodeFormatVersion";
}

TEST(UcodeGolden, BlockEndingInConditionalBranch) {
  // The canonical loop shape: the branch closes its block, the taken edge
  // targets the loop head, the fall-through edge starts the next block.
  // Covers resolved load/store displacements and a pre-extended negative
  // ALU immediate on the way.
  const Program p = assemble(R"(
        la $t0, buf
        li $s0, 10
  loop: sw $s0, 0($t0)
        lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 16
  )");
  check_golden("block_ending_in_conditional_branch", p, nullptr);
}

TEST(UcodeGolden, ExtMidBlock) {
  // An EXT in the middle of a straight-line block: the decoder must bind
  // its Conf id as the uop immediate (resolved against the table) without
  // ending the block — EXT is not a control instruction.
  ExtInstTable table;
  table.intern(ExtInstDef(
      /*num_inputs=*/2, {MicroOp{Opcode::kAddu, /*dst=*/2, /*a=*/0, /*b=*/1},
                         MicroOp{Opcode::kSll, /*dst=*/3, /*a=*/2, /*b=*/-1,
                                 /*imm=*/2}}));
  Program p;
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/8, 0, 5));
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/9, 0, 7));
  p.text.push_back(make_ext(/*rd=*/10, /*rs=*/8, /*rt=*/9, /*conf=*/0));
  p.text.push_back(make_r(Opcode::kAddu, /*rd=*/2, /*rs=*/10, /*rt=*/0));
  p.text.push_back(make_halt());
  check_golden("ext_mid_block", p, &table);
}

TEST(UcodeGolden, SingleInstructionBlockAtProgramEnd) {
  // A jump over the penultimate instruction leaves `halt` alone in the
  // final one-instruction block, directly abutting the off-the-end
  // sentinel — the decode corner where segment [last] == sentinel - 1.
  Program p;
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/2, 0, 1));
  p.text.push_back(make_jump(Opcode::kJ, /*target=*/3));
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/2, 0, 99));  // skipped
  p.text.push_back(make_halt());
  check_golden("single_instruction_block_at_end", p, nullptr);
}

}  // namespace
}  // namespace t1000
