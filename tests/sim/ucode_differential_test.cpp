// The uop interpreter's functional-equivalence proof.
//
// Executor and record_trace default to the pre-decoded threaded-code
// interpreter (sim/ucode.hpp); the original instruction-by-instruction
// interpreter is kept as the executable specification (ExecMode::kReference).
// This suite pins the two byte-identical over every registered workload
// (paper suite + extended suite — 12 programs) under all three selectors:
// the committed traces must agree on content_hash, checksum, and every
// timing-visible StepInfo field, and a timing simulation replayed from
// either trace must produce byte-identical SimStats JSON.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/ucode_check.hpp"
#include "harness/experiment.hpp"
#include "harness/serialize.hpp"
#include "sim/trace.hpp"
#include "sim/ucode.hpp"
#include "uarch/timing.hpp"

namespace t1000 {
namespace {

const std::vector<Workload>& every_workload() {
  static const std::vector<Workload> all = [] {
    std::vector<Workload> out = all_workloads();
    const std::vector<Workload>& extra = extended_workloads();
    out.insert(out.end(), extra.begin(), extra.end());
    return out;
  }();
  return all;
}

// Rewritten programs must be legal on the machine they run on: give every
// spec a PFU budget, and teach the selective pass about it (the invariant
// selective_spec() maintains).
RunSpec spec_for(const std::string& workload, Selector selector) {
  switch (selector) {
    case Selector::kNone:
      return baseline_spec(workload);
    case Selector::kGreedy:
      return greedy_spec(workload, "greedy", 4, 10);
    case Selector::kSelective:
      return selective_spec(workload, "selective", 4, 10);
  }
  return baseline_spec(workload);
}

class UcodeDifferential : public ::testing::TestWithParam<std::size_t> {
 protected:
  // One experiment per workload, shared across the three selector cases so
  // the (expensive) preparation is built once.
  static WorkloadExperiment& experiment(std::size_t index) {
    static std::vector<std::unique_ptr<WorkloadExperiment>> cache(
        every_workload().size());
    auto& slot = cache[index];
    if (!slot) {
      slot = std::make_unique<WorkloadExperiment>(every_workload()[index]);
    }
    return *slot;
  }
};

TEST_P(UcodeDifferential, TraceAndStatsMatchReferenceInterpreter) {
  const Workload& w = every_workload()[GetParam()];
  WorkloadExperiment& exp = experiment(GetParam());

  for (const Selector selector :
       {Selector::kNone, Selector::kGreedy, Selector::kSelective}) {
    const RunSpec spec = spec_for(w.name, selector);
    const WorkloadExperiment::PreparedView view = exp.prepared(spec);
    ASSERT_NE(view.program, nullptr);
    ASSERT_NE(view.trace, nullptr);
    ASSERT_NE(view.ucode, nullptr);
    const std::string tag =
        w.name + " / " + std::string(selector_name(selector));

    // The decoded stream the preparation executed from must itself pass
    // the structural `ucode.*` rule family.
    const VerifyReport decoded = verify_ucode(*view.ucode);
    EXPECT_EQ(decoded.errors(), 0) << tag;

    // The harness recorded view.trace through the uop path; re-record the
    // very same rewritten program through the reference interpreter.
    const CommittedTrace reference = record_trace(
        *view.program, view.table, w.max_steps, ExecMode::kReference);

    EXPECT_EQ(view.trace->size(), reference.size()) << tag;
    EXPECT_EQ(view.trace->checksum(), reference.checksum()) << tag;
    EXPECT_EQ(view.trace->content_hash(), reference.content_hash()) << tag;

    // Equal fingerprints should mean equal streams; make a fingerprint
    // collision (or a hash that ignores a column) unable to hide by also
    // comparing every timing-visible StepInfo field directly.
    ASSERT_EQ(view.trace->size(), reference.size()) << tag;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const StepInfo want = reference.step_at(i, *view.program);
      const StepInfo got = view.trace->step_at(i, *view.program);
      ASSERT_EQ(got.index, want.index) << tag << " step " << i;
      ASSERT_EQ(got.next_index, want.next_index) << tag << " step " << i;
      ASSERT_EQ(got.is_mem, want.is_mem) << tag << " step " << i;
      ASSERT_EQ(got.mem_addr, want.mem_addr) << tag << " step " << i;
      ASSERT_EQ(got.mem_size, want.mem_size) << tag << " step " << i;
      ASSERT_EQ(got.branch_taken, want.branch_taken) << tag << " step " << i;
    }

    // A timing simulation replayed from either trace must land on the same
    // SimStats, byte for byte.
    const RunSpec base = spec_for(w.name, selector);
    const SimStats from_ucode =
        simulate({.program = view.program, .ext_table = view.table,
                  .trace = view.trace, .machine = base.machine});
    const SimStats from_reference =
        simulate({.program = view.program, .ext_table = view.table,
                  .trace = &reference, .machine = base.machine});
    EXPECT_EQ(to_json(from_ucode).dump(), to_json(from_reference).dump())
        << tag;
  }
}

TEST_P(UcodeDifferential, StepForStepExecutorEquality) {
  // Beyond the committed trace: drive the two interpreters side by side
  // through the *baseline* program and require the full architectural
  // state to agree after every step (registers compared at the end; pc,
  // halt, and StepInfo per step).
  const Workload& w = every_workload()[GetParam()];
  const Program p = workload_program(w);

  Executor ref(p, nullptr, ExecMode::kReference);
  Executor uop(p, nullptr, ExecMode::kUcode);
  std::uint64_t steps = 0;
  while (!ref.halted() && steps < w.max_steps) {
    ASSERT_FALSE(uop.halted()) << w.name << " step " << steps;
    const StepInfo want = ref.step();
    const StepInfo got = uop.step();
    ASSERT_EQ(got.index, want.index) << w.name << " step " << steps;
    ASSERT_EQ(got.next_index, want.next_index) << w.name << " step " << steps;
    ASSERT_EQ(got.ins, want.ins) << w.name << " step " << steps;
    ASSERT_EQ(got.is_mem, want.is_mem) << w.name << " step " << steps;
    ASSERT_EQ(got.mem_addr, want.mem_addr) << w.name << " step " << steps;
    ASSERT_EQ(got.mem_size, want.mem_size) << w.name << " step " << steps;
    ASSERT_EQ(got.has_result, want.has_result) << w.name << " step " << steps;
    ASSERT_EQ(got.result, want.result) << w.name << " step " << steps;
    ASSERT_EQ(got.num_src, want.num_src) << w.name << " step " << steps;
    ASSERT_EQ(got.src_vals, want.src_vals) << w.name << " step " << steps;
    ASSERT_EQ(got.branch_taken, want.branch_taken)
        << w.name << " step " << steps;
    ++steps;
  }
  EXPECT_TRUE(ref.halted()) << w.name << ": did not halt within its bound";
  EXPECT_EQ(uop.halted(), ref.halted()) << w.name;
  EXPECT_EQ(uop.pc(), ref.pc()) << w.name;
  EXPECT_EQ(uop.steps_executed(), ref.steps_executed()) << w.name;
  for (Reg r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(uop.reg(r), ref.reg(r)) << w.name << " $" << int(r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, UcodeDifferential,
    ::testing::Range<std::size_t>(0, every_workload().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return every_workload()[info.param].name;
    });

}  // namespace
}  // namespace t1000
