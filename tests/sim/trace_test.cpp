#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "asmkit/assembler.hpp"
#include "sim/executor.hpp"

namespace t1000 {
namespace {

Program loop_program() {
  return assemble(R"(
        la $t0, buf
        li $s0, 10
  loop: sw $s0, 0($t0)
        lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 16
  )");
}

TEST(Trace, RecordsExactCommittedStream) {
  const Program p = loop_program();
  const CommittedTrace trace = record_trace(p, nullptr, 1u << 20);

  // Replay the same program on a fresh executor and compare every
  // timing-visible StepInfo field step by step.
  Executor exec(p);
  std::size_t i = 0;
  while (!exec.halted()) {
    const StepInfo want = exec.step();
    ASSERT_LT(i, trace.size());
    const StepInfo got = trace.step_at(i, p);
    EXPECT_EQ(got.index, want.index) << "step " << i;
    EXPECT_EQ(got.next_index, want.next_index) << "step " << i;
    EXPECT_EQ(got.ins.op, want.ins.op) << "step " << i;
    EXPECT_EQ(got.is_mem, want.is_mem) << "step " << i;
    EXPECT_EQ(got.mem_addr, want.mem_addr) << "step " << i;
    EXPECT_EQ(got.mem_size, want.mem_size) << "step " << i;
    EXPECT_EQ(got.branch_taken, want.branch_taken) << "step " << i;
    ++i;
  }
  EXPECT_EQ(i, trace.size());
  EXPECT_EQ(trace.checksum(), exec.reg(kRegV0));
}

TEST(Trace, DropsArchitecturalValues) {
  // The SoA projection keeps only what the pipeline reads; operand and
  // result values must come back zeroed (see the trace.hpp file comment).
  const Program p = loop_program();
  const CommittedTrace trace = record_trace(p, nullptr, 1u << 20);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const StepInfo info = trace.step_at(i, p);
    EXPECT_FALSE(info.has_result);
    EXPECT_EQ(info.result, 0u);
    EXPECT_EQ(info.num_src, 0);
    EXPECT_EQ(info.src_vals[0], 0u);
    EXPECT_EQ(info.src_vals[1], 0u);
  }
}

TEST(Trace, SentinelStepIsLastAndSynthetic) {
  // Programs that return from main commit one off-the-end step (the halt
  // sentinel); the direct pipeline performs an I-cache access for it, so
  // stat-exact replay requires it in the trace.
  const Program p = assemble(R"(
        li $v0, 7
        jr $ra
  )");
  const CommittedTrace trace = record_trace(p, nullptr, 1000);
  ASSERT_GE(trace.size(), 1u);
  const std::size_t last = trace.size() - 1;
  EXPECT_GE(trace.index_at(last), static_cast<std::int32_t>(p.size()));
  const StepInfo info = trace.step_at(last, p);
  EXPECT_EQ(info.ins.op, Opcode::kHalt);
  // No earlier step may be off the end.
  for (std::size_t i = 0; i < last; ++i) {
    EXPECT_LT(trace.index_at(i), static_cast<std::int32_t>(p.size()));
  }
}

TEST(Trace, ContentHashIsStableAndDiscriminating) {
  const Program p = loop_program();
  const CommittedTrace a = record_trace(p, nullptr, 1u << 20);
  const CommittedTrace b = record_trace(p, nullptr, 1u << 20);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_EQ(a.size(), b.size());

  const Program q = assemble(R"(
        li $v0, 1
        halt
  )");
  const CommittedTrace c = record_trace(q, nullptr, 1000);
  EXPECT_NE(a.content_hash(), c.content_hash());
}

TEST(Trace, ThrowsWhenProgramDoesNotHalt) {
  const Program p = assemble("loop: j loop");
  EXPECT_THROW(record_trace(p, nullptr, 1000), SimError);
}

TEST(Trace, CursorWalksWholeTraceOnce) {
  const Program p = loop_program();
  const CommittedTrace trace = record_trace(p, nullptr, 1u << 20);
  TraceCursor cursor(trace, p);
  std::size_t steps = 0;
  while (!cursor.halted()) {
    EXPECT_EQ(cursor.next_pc(), p.pc_of(trace.index_at(steps)));
    const DecodedStep step = cursor.step();
    EXPECT_EQ(step.info.index, trace.index_at(steps));
    ++steps;
  }
  EXPECT_EQ(steps, trace.size());
}

TEST(Trace, DecodedCursorMatchesTraceCursor) {
  // The batch replay path pre-decodes the whole trace once (DecodedTrace);
  // its cursor must hand out exactly what the decode-on-the-fly cursor does.
  const Program p = loop_program();
  const CommittedTrace trace = record_trace(p, nullptr, 1u << 20);
  const DecodedTrace decoded(trace, p);
  ASSERT_EQ(decoded.size(), trace.size());
  TraceCursor on_the_fly(trace, p);
  DecodedCursor pre(decoded);
  while (!on_the_fly.halted()) {
    ASSERT_FALSE(pre.halted());
    EXPECT_EQ(on_the_fly.next_pc(), pre.next_pc());
    const DecodedStep a = on_the_fly.step();
    const DecodedStep& b = pre.step();
    EXPECT_EQ(a.info.index, b.info.index);
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.fu, b.fu);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.is_ctrl, b.is_ctrl);
    EXPECT_EQ(a.is_store, b.is_store);
    EXPECT_EQ(a.is_ext, b.is_ext);
  }
  EXPECT_TRUE(pre.halted());
}

TEST(Trace, MemoryFootprintIsCompact) {
  const Program p = loop_program();
  const CommittedTrace trace = record_trace(p, nullptr, 1u << 20);
  // 14 bytes per step of payload; capacity-based accounting may round up
  // by the vector growth factor but never below the payload.
  EXPECT_GE(trace.memory_bytes(), trace.size() * 14);
  EXPECT_LT(trace.memory_bytes(), trace.size() * 14 * 3 + 64);
}

}  // namespace
}  // namespace t1000
