#include "sim/profiler.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"

namespace t1000 {
namespace {

TEST(Profiler, CountsPerStaticInstruction) {
  const Program p = assemble(R"(
        li $t0, 0
        li $t1, 5
  loop: addiu $t0, $t0, 1
        bne $t0, $t1, loop
        halt
  )");
  const Profile prof = profile_program(p, 1000);
  EXPECT_EQ(prof.insts[0].count, 1u);
  EXPECT_EQ(prof.insts[1].count, 1u);
  EXPECT_EQ(prof.insts[2].count, 5u);
  EXPECT_EQ(prof.insts[3].count, 5u);
  EXPECT_EQ(prof.insts[4].count, 1u);
  EXPECT_EQ(prof.total_dynamic, 13u);
}

TEST(Profiler, TracksOperandWidths) {
  const Program p = assemble(R"(
        li $t0, 7          # 4-bit value
        sll $t1, $t0, 10   # result 7<<10 needs 14 bits
        li $t2, 0x7FFFF    # 20-bit value
        addu $t3, $t2, $t2
        halt
  )");
  const Profile prof = profile_program(p, 1000);
  // sll: source width = width(7) = 4, result width = width(7168) = 14.
  EXPECT_EQ(prof.insts[1].max_src_width, 4);
  EXPECT_EQ(prof.insts[1].max_result_width, 14);
  // addu over 20-bit sources (0x7FFFF = 19 value bits + sign).
  EXPECT_EQ(prof.insts[4].max_src_width, 20);
  EXPECT_EQ(prof.insts[4].max_result_width, 21);  // 0xFFFFE
}

TEST(Profiler, WidthIsMaxOverExecutions) {
  const Program p = assemble(R"(
        li $t0, 0
        li $t1, 3
        li $t2, 0
  loop: sll $t3, $t2, 8        # width grows as $t2 grows
        addiu $t2, $t2, 100
        addiu $t0, $t0, 1
        bne $t0, $t1, loop
        halt
  )");
  const Profile prof = profile_program(p, 1000);
  // Final iteration shifts 200 << 8 = 51200 (width 17).
  EXPECT_EQ(prof.insts[3].max_result_width, 17);
}

TEST(Profiler, BaseCyclesWeighsMultiCycleOps) {
  const Program p = assemble(R"(
      li $t0, 3
      mul $t1, $t0, $t0
      halt
  )");
  const Profile prof = profile_program(p, 100);
  // li(1) + mul(3) + halt(1)
  EXPECT_EQ(prof.total_base_cycles, 5u);
  EXPECT_EQ(prof.cycles_of(1, p), 3u);
}

TEST(Profiler, ThrowsWhenBoundExceeded) {
  const Program p = assemble("loop: j loop");
  EXPECT_THROW(profile_program(p, 50), SimError);
}

TEST(Profiler, ExtInstructionsProfiled) {
  ExtInstTable table;
  table.intern(ExtInstDef(2, {{.op = Opcode::kAddu, .dst = 2, .a = 0, .b = 1}}));
  const Program p = assemble(R"(
      li $t0, 4
      li $t1, 5
      ext $v0, $t0, $t1, 0
      halt
  )");
  const Profile prof = profile_program(p, 100, &table);
  EXPECT_EQ(prof.insts[2].count, 1u);
  EXPECT_EQ(prof.insts[2].max_result_width, 5);  // 9 needs 5 signed bits
}

}  // namespace
}  // namespace t1000
