#include "sim/memory.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

TEST(Memory, ZeroInitialized) {
  const Memory m;
  EXPECT_EQ(m.load_u8(0x10000000), 0);
  EXPECT_EQ(m.load_u16(0x10000000), 0);
  EXPECT_EQ(m.load_u32(0x10000000), 0u);
}

TEST(Memory, ByteRoundTrip) {
  Memory m;
  m.store_u8(0x10000003, 0xAB);
  EXPECT_EQ(m.load_u8(0x10000003), 0xAB);
  EXPECT_EQ(m.load_u8(0x10000002), 0);
}

TEST(Memory, LittleEndianLayout) {
  Memory m;
  m.store_u32(0x10000000, 0x01020304);
  EXPECT_EQ(m.load_u8(0x10000000), 0x04);
  EXPECT_EQ(m.load_u8(0x10000001), 0x03);
  EXPECT_EQ(m.load_u8(0x10000002), 0x02);
  EXPECT_EQ(m.load_u8(0x10000003), 0x01);
  EXPECT_EQ(m.load_u16(0x10000000), 0x0304);
  EXPECT_EQ(m.load_u16(0x10000002), 0x0102);
}

TEST(Memory, HalfwordRoundTrip) {
  Memory m;
  m.store_u16(0x20000002, 0xBEEF);
  EXPECT_EQ(m.load_u16(0x20000002), 0xBEEF);
  EXPECT_EQ(m.load_u32(0x20000000), 0xBEEF0000u);
}

TEST(Memory, MisalignedAccessThrows) {
  Memory m;
  EXPECT_THROW(m.load_u16(0x10000001), MemError);
  EXPECT_THROW(m.load_u32(0x10000002), MemError);
  EXPECT_THROW(m.store_u16(0x10000003, 1), MemError);
  EXPECT_THROW(m.store_u32(0x10000001, 1), MemError);
}

TEST(Memory, SparsePagesAllocatedOnWrite) {
  Memory m;
  EXPECT_EQ(m.pages_allocated(), 0u);
  (void)m.load_u32(0x10000000);  // reads do not allocate
  EXPECT_EQ(m.pages_allocated(), 0u);
  m.store_u8(0x10000000, 1);
  m.store_u8(0x10000FFF, 2);  // same 4 KiB page
  EXPECT_EQ(m.pages_allocated(), 1u);
  m.store_u8(0x7FFF0000, 3);  // far-away page
  EXPECT_EQ(m.pages_allocated(), 2u);
}

TEST(Memory, WriteBlockCopiesImage) {
  Memory m;
  m.write_block(0x10000000, {1, 2, 3, 4, 5});
  EXPECT_EQ(m.load_u32(0x10000000), 0x04030201u);
  EXPECT_EQ(m.load_u8(0x10000004), 5);
}

TEST(Memory, CrossPageBytesIndependent) {
  Memory m;
  m.store_u8(0x10000FFF, 0x11);
  m.store_u8(0x10001000, 0x22);
  EXPECT_EQ(m.load_u8(0x10000FFF), 0x11);
  EXPECT_EQ(m.load_u8(0x10001000), 0x22);
}

}  // namespace
}  // namespace t1000
