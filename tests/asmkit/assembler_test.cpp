#include "asmkit/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/instruction.hpp"

namespace t1000 {
namespace {

TEST(Assembler, EmptySourceYieldsEmptyProgram) {
  const Program p = assemble("");
  EXPECT_EQ(p.size(), 0);
  EXPECT_TRUE(p.data.empty());
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const Program p = assemble(R"(
      # full-line comment
      ; another
      nop        # trailing comment
      nop        // c++ style
  )");
  EXPECT_EQ(p.size(), 2);
}

TEST(Assembler, BasicInstructions) {
  const Program p = assemble(R"(
      addu $t0, $t1, $t2
      sll  $t0, $t0, 3
      addiu $t0, $t0, -5
      lw   $t3, 8($sp)
      sw   $t3, -4($sp)
      lui  $t4, 0x1234
      halt
  )");
  ASSERT_EQ(p.size(), 7);
  EXPECT_EQ(p.text[0], make_r(Opcode::kAddu, 8, 9, 10));
  EXPECT_EQ(p.text[1], make_shift(Opcode::kSll, 8, 8, 3));
  EXPECT_EQ(p.text[2], make_imm(Opcode::kAddiu, 8, 8, -5));
  EXPECT_EQ(p.text[3], make_mem(Opcode::kLw, 11, 29, 8));
  EXPECT_EQ(p.text[4], make_mem(Opcode::kSw, 11, 29, -4));
  EXPECT_EQ(p.text[5], make_lui(12, 0x1234));
  EXPECT_EQ(p.text[6], make_halt());
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = assemble(R"(
  top:  addiu $t0, $t0, 1
        bne $t0, $t1, top
        beq $t0, $zero, done
        j top
  done: halt
  )");
  ASSERT_EQ(p.size(), 5);
  EXPECT_EQ(p.text[1].imm, 0);
  EXPECT_EQ(p.text[2].imm, 4);
  EXPECT_EQ(p.text[3].imm, 0);
  EXPECT_EQ(p.text_symbols.at("top"), 0);
  EXPECT_EQ(p.text_symbols.at("done"), 4);
}

TEST(Assembler, ForwardReferencesResolve) {
  const Program p = assemble(R"(
        b end
        nop
  end:  halt
  )");
  EXPECT_EQ(p.text[0].op, Opcode::kBeq);
  EXPECT_EQ(p.text[0].imm, 2);
}

TEST(Assembler, LabelOnOwnLine) {
  const Program p = assemble(R"(
  here:
        j here
  )");
  EXPECT_EQ(p.text_symbols.at("here"), 0);
  EXPECT_EQ(p.text[0].imm, 0);
}

TEST(Assembler, MultipleLabelsSameLocation) {
  const Program p = assemble(R"(
  a: b_: nop
  )");
  EXPECT_EQ(p.text_symbols.at("a"), 0);
  EXPECT_EQ(p.text_symbols.at("b_"), 0);
}

TEST(Assembler, LiSmallExpandsToAddiu) {
  const Program p = assemble("li $t0, 42");
  ASSERT_EQ(p.size(), 1);
  EXPECT_EQ(p.text[0], make_imm(Opcode::kAddiu, 8, 0, 42));
}

TEST(Assembler, LiNegativeExpandsToAddiu) {
  const Program p = assemble("li $t0, -32768");
  ASSERT_EQ(p.size(), 1);
  EXPECT_EQ(p.text[0], make_imm(Opcode::kAddiu, 8, 0, -32768));
}

TEST(Assembler, LiLargeExpandsToLuiOri) {
  const Program p = assemble("li $t0, 0x12345678");
  ASSERT_EQ(p.size(), 2);
  EXPECT_EQ(p.text[0], make_lui(8, 0x1234));
  EXPECT_EQ(p.text[1], make_imm(Opcode::kOri, 8, 8, 0x5678));
}

TEST(Assembler, LiAlignedExpandsToLuiOnly) {
  const Program p = assemble("li $t0, 0x40000");
  ASSERT_EQ(p.size(), 1);
  EXPECT_EQ(p.text[0], make_lui(8, 0x4));
}

TEST(Assembler, LiAllOnesExpandsToAddiu) {
  // 0xFFFFFFFF is the 32-bit pattern of -1: one addiu, not lui+ori.
  const Program p = assemble("li $t0, 0xFFFFFFFF");
  ASSERT_EQ(p.size(), 1);
  EXPECT_EQ(p.text[0], make_imm(Opcode::kAddiu, 8, 0, -1));
}

TEST(Assembler, LiNegativeAlignedExpandsToLuiOnly) {
  const Program p = assemble("li $t0, -0x10000");  // pattern 0xFFFF0000
  ASSERT_EQ(p.size(), 1);
  EXPECT_EQ(p.text[0], make_lui(8, 0xFFFF));
}

// Regression: the sizing pass classified `li` on the raw 64-bit parse while
// emission classified the truncated 32-bit pattern, so a wide-hex li (e.g.
// 0xFFFFFFFF) was sized as two instructions but emitted as one — shifting
// every label bound after it and silently retargeting branches
// (t1000-verify's wf.use-before-def caught this in the pegwit workload).
TEST(Assembler, LabelsAfterWideHexLiStayAligned) {
  const Program p = assemble(R"(
        li $s0, 0xFFFFFFFF
  top:  addiu $t0, $t0, 1
        bne $t0, $s0, top
        j   top
        halt
  )");
  ASSERT_EQ(p.size(), 5);
  EXPECT_EQ(p.text[0], make_imm(Opcode::kAddiu, 16, 0, -1));
  // `top` must resolve to the addiu at index 1, not a stale index 2.
  EXPECT_EQ(p.text[2].imm, 1);
  EXPECT_EQ(p.text[3].imm, 1);
}

TEST(Assembler, LaResolvesDataAddress) {
  const Program p = assemble(R"(
        .data
  pad:  .space 8
  buf:  .word 1
        .text
        la $a0, buf
        halt
  )");
  ASSERT_EQ(p.size(), 3);
  const std::uint32_t addr = kDataBase + 8;
  EXPECT_EQ(p.text[0], make_lui(4, static_cast<std::int32_t>(addr >> 16)));
  EXPECT_EQ(p.text[1],
            make_imm(Opcode::kOri, 4, 4, static_cast<std::int32_t>(addr & 0xFFFF)));
}

TEST(Assembler, MovePseudo) {
  const Program p = assemble("move $s0, $t3");
  EXPECT_EQ(p.text[0], make_r(Opcode::kAddu, 16, 11, 0));
}

TEST(Assembler, NotNegPseudos) {
  const Program p = assemble("not $t0, $t1\nneg $t2, $t3");
  EXPECT_EQ(p.text[0], make_r(Opcode::kNor, 8, 9, 0));
  EXPECT_EQ(p.text[1], make_r(Opcode::kSubu, 10, 0, 11));
}

TEST(Assembler, ComparisonBranchPseudos) {
  const Program p = assemble(R"(
  top:  blt $t0, $t1, top
        bge $t0, $t1, top
        bgt $t0, $t1, top
        ble $t0, $t1, top
        bltu $t0, $t1, top
  )");
  ASSERT_EQ(p.size(), 10);
  EXPECT_EQ(p.text[0], make_r(Opcode::kSlt, kRegAt, 8, 9));
  EXPECT_EQ(p.text[1], make_branch2(Opcode::kBne, kRegAt, 0, 0));
  EXPECT_EQ(p.text[2], make_r(Opcode::kSlt, kRegAt, 8, 9));
  EXPECT_EQ(p.text[3], make_branch2(Opcode::kBeq, kRegAt, 0, 0));
  EXPECT_EQ(p.text[4], make_r(Opcode::kSlt, kRegAt, 9, 8));  // swapped
  EXPECT_EQ(p.text[8], make_r(Opcode::kSltu, kRegAt, 8, 9));
}

TEST(Assembler, PseudoSizesKeepLabelsConsistent) {
  // The `li` before `target` expands to 2 instructions; the label must
  // account for that in pass 1.
  const Program p = assemble(R"(
        li $t0, 0x12345678
  target: halt
        j target
  )");
  EXPECT_EQ(p.text_symbols.at("target"), 2);
  EXPECT_EQ(p.text[3].imm, 2);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
        .data
  w:    .word 0x01020304, -1
  h:    .half 0x0506
  b:    .byte 7, 8
  s:    .space 3
  a:    .asciiz "hi"
  )");
  ASSERT_EQ(p.data.size(), 4u + 4 + 2 + 2 + 3 + 3);
  // Little-endian layout.
  EXPECT_EQ(p.data[0], 0x04);
  EXPECT_EQ(p.data[3], 0x01);
  EXPECT_EQ(p.data[4], 0xFF);
  EXPECT_EQ(p.data[8], 0x06);
  EXPECT_EQ(p.data[10], 7);
  EXPECT_EQ(p.data[11], 8);
  EXPECT_EQ(p.data[15], 'h');
  EXPECT_EQ(p.data[17], '\0');
  EXPECT_EQ(p.data_symbols.at("w"), kDataBase);
  EXPECT_EQ(p.data_symbols.at("h"), kDataBase + 8);
  EXPECT_EQ(p.data_symbols.at("a"), kDataBase + 15);
}

TEST(Assembler, AlignPadsToPowerOfTwo) {
  const Program p = assemble(R"(
        .data
        .byte 1
        .align 2
  w:    .word 9
  )");
  EXPECT_EQ(p.data_symbols.at("w"), kDataBase + 4);
  EXPECT_EQ(p.data.size(), 8u);
}

TEST(Assembler, WordCanHoldLabelAddresses) {
  const Program p = assemble(R"(
        .data
  tbl:  .word tbl, entry
        .text
  entry: halt
  )");
  const std::uint32_t tbl = kDataBase;
  EXPECT_EQ(p.data[0], tbl & 0xFF);
  std::uint32_t entry_addr = 0;
  for (int i = 0; i < 4; ++i) {
    entry_addr |= static_cast<std::uint32_t>(p.data[4 + i]) << (8 * i);
  }
  EXPECT_EQ(entry_addr, kTextBase);
}

TEST(Assembler, ExtInstruction) {
  const Program p = assemble("ext $t0, $t1, $t2, 17");
  EXPECT_EQ(p.text[0], make_ext(8, 9, 10, 17));
}

TEST(Assembler, NumericTargets) {
  const Program p = assemble("j @7");
  EXPECT_EQ(p.text[0].imm, 7);
}

TEST(Assembler, JrAndJalr) {
  const Program p = assemble("jr $ra\njalr $ra, $t0");
  EXPECT_EQ(p.text[0], make_jr(31));
  EXPECT_EQ(p.text[1], make_jalr(31, 8));
}

// --- error cases ---

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_THROW(assemble("frob $t0, $t1"), AsmError);
}

TEST(AssemblerErrors, UndefinedLabel) {
  EXPECT_THROW(assemble("j nowhere"), AsmError);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("x: nop\nx: nop"), AsmError);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_THROW(assemble("addu $t0, $q1, $t2"), AsmError);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("addu $t0, $t1"), AsmError);
  EXPECT_THROW(assemble("halt $t0"), AsmError);
}

TEST(AssemblerErrors, BadShiftAmount) {
  EXPECT_THROW(assemble("sll $t0, $t1, 32"), AsmError);
  EXPECT_THROW(assemble("sll $t0, $t1, -1"), AsmError);
}

TEST(AssemblerErrors, DataDirectiveInText) {
  EXPECT_THROW(assemble(".word 5"), AsmError);
}

TEST(AssemblerErrors, InstructionInData) {
  EXPECT_THROW(assemble(".data\nnop"), AsmError);
}

TEST(AssemblerErrors, BadMemOperand) {
  EXPECT_THROW(assemble("lw $t0, $t1"), AsmError);
  EXPECT_THROW(assemble("lw $t0, 4($t1"), AsmError);
}

TEST(AssemblerErrors, ConfOutOfRange) {
  EXPECT_THROW(assemble("ext $t0, $t1, $t2, 2048"), AsmError);
}

TEST(AssemblerErrors, ReportsLineNumber) {
  try {
    assemble("nop\nnop\nbogus\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

// --- disassembler ---

TEST(Disassembler, RoundTripsInstructions) {
  const Program p = assemble(R"(
  top:  addu $t0, $t1, $t2
        sll  $t0, $t0, 3
        lw   $t3, 8($sp)
        bne  $t0, $t3, top
        ext  $t0, $t1, $t2, 3
        halt
  )");
  const Program q = assemble(disassemble(p));
  EXPECT_EQ(q.text, p.text);
}

TEST(Disassembler, RoundTripsDataBytes) {
  const Program p = assemble(".data\n.word 0xDEADBEEF\n.text\nhalt");
  const Program q = assemble(disassemble(p));
  EXPECT_EQ(q.data, p.data);
}

// --- binary image ---

TEST(BinaryImage, EncodeDecodeRoundTrip) {
  const Program p = assemble(R"(
  top:  addiu $t0, $t0, 1
        bne $t0, $t1, top
        jal top
        ext $v0, $t0, $t1, 9
        halt
  )");
  const Program q = decode_text(p.encode_text());
  EXPECT_EQ(q.text, p.text);
}

}  // namespace
}  // namespace t1000
