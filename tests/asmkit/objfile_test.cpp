#include "asmkit/objfile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "asmkit/assembler.hpp"

namespace t1000 {
namespace {

Program sample_program() {
  return assemble(R"(
        .data
  buf:  .word 1, 2, 3
  msg:  .asciiz "hi"
        .text
  main: la $t0, buf
  loop: lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $t0, $t0, 4
        slti $at, $v0, 100
        bne $at, $zero, loop
        ext $t2, $t0, $t1, 0
        halt
  )");
}

ExtInstTable sample_table() {
  ExtInstTable t;
  t.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 3},
                          {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  t.intern(ExtInstDef(1, {{.op = Opcode::kAndi, .dst = 2, .a = 0, .imm = 0xFF},
                          {.op = Opcode::kXori, .dst = 3, .a = 2, .imm = 1}}));
  return t;
}

TEST(ObjFile, RoundTripsProgram) {
  const Program p = sample_program();
  std::stringstream buf;
  save_object(buf, p);
  const LoadedObject obj = load_object(buf);
  EXPECT_EQ(obj.program.text, p.text);
  EXPECT_EQ(obj.program.data, p.data);
  EXPECT_EQ(obj.program.text_symbols, p.text_symbols);
  EXPECT_EQ(obj.program.data_symbols, p.data_symbols);
  EXPECT_EQ(obj.ext_table.size(), 0);
}

TEST(ObjFile, RoundTripsExtTable) {
  const Program p = sample_program();
  const ExtInstTable t = sample_table();
  std::stringstream buf;
  save_object(buf, p, &t);
  const LoadedObject obj = load_object(buf);
  ASSERT_EQ(obj.ext_table.size(), 2);
  EXPECT_EQ(obj.ext_table.at(0).signature(), t.at(0).signature());
  EXPECT_EQ(obj.ext_table.at(1).signature(), t.at(1).signature());
  EXPECT_EQ(obj.ext_table.at(0).eval(3, 10), t.at(0).eval(3, 10));
}

TEST(ObjFile, EmptyProgramRoundTrips) {
  std::stringstream buf;
  save_object(buf, Program{});
  const LoadedObject obj = load_object(buf);
  EXPECT_EQ(obj.program.size(), 0);
}

TEST(ObjFile, RejectsBadMagic) {
  std::stringstream buf("this is not an object file at all");
  EXPECT_THROW(load_object(buf), ObjError);
}

TEST(ObjFile, RejectsTruncation) {
  const Program p = sample_program();
  std::stringstream buf;
  save_object(buf, p);
  const std::string full = buf.str();
  for (const std::size_t cut : {std::size_t{8}, std::size_t{16}, full.size() / 2, full.size() - 1}) {
    std::stringstream cut_buf(full.substr(0, cut));
    EXPECT_THROW(load_object(cut_buf), ObjError) << "cut at " << cut;
  }
}

TEST(ObjFile, RejectsGarbageMicroOps) {
  // Claim one ext def, then feed malformed bytes.
  const Program p = assemble("halt");
  std::stringstream buf;
  save_object(buf, p);
  std::string bytes = buf.str();
  bytes[24] = 1;  // n_defs field (7th u32)
  bytes += std::string("\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF", 8);
  std::stringstream bad(bytes);
  EXPECT_THROW(load_object(bad), ObjError);
}

TEST(ObjFile, FileRoundTrip) {
  const Program p = sample_program();
  const ExtInstTable t = sample_table();
  const std::string path = ::testing::TempDir() + "/t1000_objfile_test.obj";
  save_object_file(path, p, &t);
  const LoadedObject obj = load_object_file(path);
  EXPECT_EQ(obj.program.text, p.text);
  EXPECT_EQ(obj.ext_table.size(), 2);
}

TEST(ObjFile, MissingFileThrows) {
  EXPECT_THROW(load_object_file("/nonexistent/path.obj"), ObjError);
}

}  // namespace
}  // namespace t1000
