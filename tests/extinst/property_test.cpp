// Property test: for randomly generated kernels, extraction + selection +
// rewriting must preserve program semantics (same $v0/$v1 checksums) and
// must never lengthen the dynamic instruction stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "asmkit/assembler.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "sim/executor.hpp"

namespace t1000 {
namespace {

// Deterministic xorshift so test cases are reproducible by seed.
class Rng {
 public:
  explicit Rng(std::uint32_t seed) : state_(seed * 2654435761u + 1) {}
  std::uint32_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  std::uint32_t below(std::uint32_t n) { return next() % n; }

 private:
  std::uint32_t state_;
};

// Generates a loop kernel of random narrow ALU operations over $t0-$t7,
// folding results into $v0 via memory so the checksum observes everything
// that must survive rewriting.
std::string generate_kernel(std::uint32_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  const int pool = 6;  // $t0..$t5 as scratch; $s0 counter; $s1 base
  os << "      .data\n";
  os << "buf:  .space 64\n";
  os << "      .text\n";
  os << "main: la $s1, buf\n";
  os << "      li $s0, " << 20 + rng.below(30) << "\n";
  for (int r = 0; r < pool; ++r) {
    os << "      li $t" << r << ", " << rng.below(200) << "\n";
  }
  os << "loop:\n";
  const int body = 4 + static_cast<int>(rng.below(10));
  for (int i = 0; i < body; ++i) {
    const int dst = static_cast<int>(rng.below(pool));
    const int a = static_cast<int>(rng.below(pool));
    const int b = static_cast<int>(rng.below(pool));
    switch (rng.below(8)) {
      case 0:
        os << "      addu $t" << dst << ", $t" << a << ", $t" << b << "\n";
        break;
      case 1:
        os << "      subu $t" << dst << ", $t" << a << ", $t" << b << "\n";
        break;
      case 2:
        os << "      xor $t" << dst << ", $t" << a << ", $t" << b << "\n";
        break;
      case 3:
        os << "      and $t" << dst << ", $t" << a << ", $t" << b << "\n";
        break;
      case 4:
        os << "      sll $t" << dst << ", $t" << a << ", " << 1 + rng.below(3)
           << "\n";
        break;
      case 5:
        os << "      sra $t" << dst << ", $t" << a << ", " << 1 + rng.below(3)
           << "\n";
        break;
      case 6:
        os << "      addiu $t" << dst << ", $t" << a << ", "
           << static_cast<std::int32_t>(rng.below(64)) - 32 << "\n";
        break;
      case 7:
        os << "      andi $t" << dst << ", $t" << a << ", 0x"
           << std::hex << (rng.below(0xFFF) | 1) << std::dec << "\n";
        break;
    }
    // Keep values narrow so candidates stay within the 18-bit policy.
    if (rng.below(3) == 0) {
      os << "      andi $t" << dst << ", $t" << dst << ", 0x3FFF\n";
    }
  }
  // Fold one scratch register through memory into the checksum.
  const int fold = static_cast<int>(rng.below(pool));
  os << "      sw $t" << fold << ", " << 4 * rng.below(8) << "($s1)\n";
  os << "      lw $at, " << 4 * rng.below(8) << "($s1)\n";
  os << "      addu $v0, $v0, $at\n";
  os << "      xor $v1, $v1, $t" << rng.below(pool) << "\n";
  os << "      addiu $s0, $s0, -1\n";
  os << "      bgtz $s0, loop\n";
  os << "      halt\n";
  return os.str();
}

struct RunResult {
  std::uint32_t v0 = 0;
  std::uint32_t v1 = 0;
  std::uint64_t steps = 0;
};

RunResult run(const Program& p, const ExtInstTable* table = nullptr) {
  Executor e(p, table);
  e.run(1u << 22);
  EXPECT_TRUE(e.halted());
  return {e.reg(2), e.reg(3), e.steps_executed()};
}

class RewriteProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RewriteProperty, GreedyRewritePreservesSemantics) {
  const std::string src = generate_kernel(GetParam());
  const Program p = assemble(src);
  const RunResult ref = run(p);

  AnalyzedProgram ap;
  ap.program = &p;
  ap.cfg = Cfg::build(p);
  ap.liveness = compute_liveness(p, ap.cfg);
  ap.profile = profile_program(p, 1u << 22);
  ap.sites = extract_sites(p, ap.cfg, ap.liveness, ap.profile, {});

  Selection sel = select_greedy(ap);
  const RewriteResult rr = rewrite_program(p, sel.apps);
  const RunResult opt = run(rr.program, &sel.table);
  EXPECT_EQ(opt.v0, ref.v0) << "seed " << GetParam() << "\n" << src;
  EXPECT_EQ(opt.v1, ref.v1) << "seed " << GetParam();
  EXPECT_LE(opt.steps, ref.steps);
  if (!sel.apps.empty()) {
    EXPECT_LT(opt.steps, ref.steps);
  }
}

TEST_P(RewriteProperty, SelectiveRewritePreservesSemantics) {
  const std::string src = generate_kernel(GetParam() ^ 0x9E3779B9u);
  const Program p = assemble(src);
  const RunResult ref = run(p);

  AnalyzedProgram ap;
  ap.program = &p;
  ap.cfg = Cfg::build(p);
  ap.liveness = compute_liveness(p, ap.cfg);
  ap.profile = profile_program(p, 1u << 22);
  ap.sites = extract_sites(p, ap.cfg, ap.liveness, ap.profile, {});

  for (const int pfus : {1, 2, 4}) {
    SelectPolicy policy;
    policy.num_pfus = pfus;
    policy.time_threshold = 0.0;
    Selection sel = select_selective(ap, policy);
    const RewriteResult rr = rewrite_program(p, sel.apps);
    const RunResult opt = run(rr.program, &sel.table);
    EXPECT_EQ(opt.v0, ref.v0) << "seed " << GetParam() << " pfus " << pfus;
    EXPECT_EQ(opt.v1, ref.v1) << "seed " << GetParam() << " pfus " << pfus;
    EXPECT_LE(opt.steps, ref.steps);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteProperty, ::testing::Range(1u, 41u));

}  // namespace
}  // namespace t1000
