#include "extinst/select.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "extinst/rewrite.hpp"
#include "sim/executor.hpp"

namespace t1000 {
namespace {

// A kernel with one hot chain (inside the loop) and one cold chain (runs
// once, before the loop).
Program hot_cold_kernel() {
  return assemble(R"(
        li $t1, 9
        li $t2, 4
        b cold
  cold: sll $t5, $t1, 3      # cold chain: executes once
        addu $t5, $t5, $t2
        sw $t5, 0($sp)
        li $s0, 500
  loop: sll $t6, $t1, 2      # hot chain: 500 executions
        addu $t6, $t6, $t2
        xori $t6, $t6, 0x11
        sw $t6, 4($sp)
        addu $v0, $v0, $t6
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
}

TEST(Select, ThresholdDropsColdSequences) {
  const Program p = hot_cold_kernel();
  const AnalyzedProgram ap = analyze_program(p, 1u << 20);
  ASSERT_EQ(ap.sites.size(), 2u);

  SelectPolicy strict;
  strict.num_pfus = 4;
  strict.time_threshold = 0.05;  // 5%: only the hot chain qualifies
  const Selection hot_only = select_selective(ap, strict);
  EXPECT_EQ(hot_only.num_configs(), 1);
  EXPECT_EQ(hot_only.table.at(0).length(), 3);

  SelectPolicy lax;
  lax.num_pfus = 4;
  lax.time_threshold = 0.0;
  const Selection both = select_selective(ap, lax);
  EXPECT_EQ(both.num_configs(), 2);
}

TEST(Select, GreedyIgnoresThreshold) {
  const Program p = hot_cold_kernel();
  const AnalyzedProgram ap = analyze_program(p, 1u << 20);
  const Selection sel = select_greedy(ap);
  EXPECT_EQ(sel.num_configs(), 2);  // hot and cold both taken
}

TEST(Select, LutBudgetForcesSplitting) {
  // A long chain of adds on ~14-bit values: the full chain costs far more
  // than a tiny budget, so emission must split it into budget-sized pieces.
  const Program p = assemble(R"(
        li $t1, 0x1FFF
        li $s0, 100
  loop: addiu $t2, $t1, 1
        addiu $t2, $t2, 2
        addiu $t2, $t2, 3
        addiu $t2, $t2, 4
        andi  $t2, $t2, 0x3FFF
        sw $t2, 0($sp)
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  const AnalyzedProgram ap = analyze_program(p, 1u << 20);
  ASSERT_EQ(ap.sites.size(), 1u);
  ASSERT_EQ(ap.sites[0].length(), 5);

  const Selection fat = select_greedy(ap, /*lut_budget=*/1000);
  EXPECT_EQ(fat.num_configs(), 1);
  ASSERT_EQ(fat.apps.size(), 1u);
  EXPECT_EQ(fat.apps[0].positions.size(), 5u);

  const Selection thin = select_greedy(ap, /*lut_budget=*/35);
  EXPECT_GE(thin.apps.size(), 2u);  // split into smaller windows
  for (const int cost : thin.lut_costs) EXPECT_LE(cost, 35);

  // Both variants must preserve semantics.
  for (const Selection* sel : {&fat, &thin}) {
    const RewriteResult rr = rewrite_program(p, sel->apps);
    Executor ref(p);
    ref.run(1u << 20);
    Executor opt(rr.program, &sel->table);
    opt.run(1u << 20);
    EXPECT_EQ(opt.reg(2), ref.reg(2));
  }
}

TEST(Select, ImpossibleBudgetSelectsNothing) {
  const Program p = hot_cold_kernel();
  const AnalyzedProgram ap = analyze_program(p, 1u << 20);
  const Selection sel = select_greedy(ap, /*lut_budget=*/0);
  EXPECT_EQ(sel.num_configs(), 0);
  EXPECT_TRUE(sel.apps.empty());
}

TEST(Select, OptimizationIsIdempotent) {
  // Re-analyzing an already-rewritten program finds nothing new: EXT ops
  // are not candidates and the remaining instructions hold no chains.
  const Program p = hot_cold_kernel();
  const AnalyzedProgram ap = analyze_program(p, 1u << 20);
  Selection sel = select_greedy(ap);
  const RewriteResult rr = rewrite_program(p, sel.apps);

  AnalyzedProgram again;
  again.program = &rr.program;
  again.cfg = Cfg::build(rr.program);
  again.liveness = compute_liveness(rr.program, again.cfg);
  again.profile = profile_program(rr.program, 1u << 20, &sel.table);
  again.sites = extract_sites(rr.program, again.cfg, again.liveness,
                              again.profile, {});
  EXPECT_TRUE(again.sites.empty());
}

TEST(Select, UnlimitedPolicySelectsAllHot) {
  const Program p = hot_cold_kernel();
  const AnalyzedProgram ap = analyze_program(p, 1u << 20);
  SelectPolicy policy;
  policy.num_pfus = kUnlimitedPfus;
  policy.time_threshold = 0.0;
  const Selection sel = select_selective(ap, policy);
  EXPECT_EQ(sel.num_configs(), 2);
}

TEST(Select, TimeThresholdIsStrictlyGreaterThan) {
  // Paper §5 keeps sequences responsible for *more than* 0.5% of total
  // time. The boundary must reject: a sequence sitting exactly at the
  // threshold does not qualify.
  EXPECT_FALSE(exceeds_time_threshold(5, 1000, 0.005));   // exactly 0.5%
  EXPECT_TRUE(exceeds_time_threshold(6, 1000, 0.005));    // just above
  EXPECT_FALSE(exceeds_time_threshold(4, 1000, 0.005));   // below
  EXPECT_FALSE(exceeds_time_threshold(0, 1000, 0.005));   // no time at all
  // threshold 0 still demands a strictly positive share.
  EXPECT_FALSE(exceeds_time_threshold(0, 1000, 0.0));
  EXPECT_TRUE(exceeds_time_threshold(1, 1000, 0.0));
  // An empty profile has no "total application time" to take a share of.
  EXPECT_FALSE(exceeds_time_threshold(0, 0, 0.005));
  EXPECT_FALSE(exceeds_time_threshold(10, 0, 0.005));
  // The whole program is trivially more than any threshold below 1.
  EXPECT_TRUE(exceeds_time_threshold(1000, 1000, 0.999));
  EXPECT_FALSE(exceeds_time_threshold(1000, 1000, 1.0));
}

TEST(Select, LengthsMatchTableDefs) {
  const Program p = hot_cold_kernel();
  const AnalyzedProgram ap = analyze_program(p, 1u << 20);
  const Selection sel = select_greedy(ap);
  ASSERT_EQ(static_cast<int>(sel.lengths.size()), sel.table.size());
  for (int c = 0; c < sel.table.size(); ++c) {
    EXPECT_EQ(sel.lengths[static_cast<std::size_t>(c)],
              sel.table.at(static_cast<ConfId>(c)).length());
  }
}

}  // namespace
}  // namespace t1000
