#include "extinst/matrix.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "extinst/select.hpp"
#include "hwcost/lut_model.hpp"

namespace t1000 {
namespace {

// The paper's Figure 3 loop: one maximal occurrence of
//   I = sll;addu;sll   and two of   J = sll;addu
// all sharing the same operation structure, so J is a common subsequence
// of I. Figure 4's matrix says [I,I]=1, [J,J]=2, [J,I]=1.
struct PaperExample {
  Program program;
  AnalyzedProgram ap;
  RegionMatrix rm;
  int idx_i = -1;  // candidate index of the 3-op sequence
  int idx_j = -1;  // candidate index of the 2-op prefix
  int idx_k = -1;  // candidate index of the 2-op suffix (addu;sll)

  PaperExample() {
    program = assemble(R"(
          li $t1, 100
          li $t3, 3
          la $t4, buf
          li $t0, 0
    loop: sll $t2, $t3, 4      # --- sequence I: sll/addu/sll ---
          addu $t2, $t2, $t1
          sll $t2, $t2, 2
          sw  $t2, 0($t4)
          sll $t5, $t3, 4      # --- sequence J occurrence 1 ---
          addu $t5, $t5, $t1
          sw  $t5, 4($t4)
          sll $t6, $t3, 4      # --- sequence J occurrence 2 ---
          addu $t6, $t6, $t1
          sw  $t6, 8($t4)
          addiu $t0, $t0, 1
          slti $at, $t0, 50
          bne $at, $zero, loop
          halt
          .data
    buf:  .space 64
    )");
    ap.program = &program;
    ap.cfg = Cfg::build(program);
    ap.liveness = compute_liveness(program, ap.cfg);
    ap.profile = profile_program(program, 1u << 22);
    ap.sites = extract_sites(program, ap.cfg, ap.liveness, ap.profile, {});

    std::vector<int> in_loop;
    for (std::size_t i = 0; i < ap.sites.size(); ++i) {
      if (ap.sites[i].loop >= 0 && ap.sites[i].length() >= 2) {
        in_loop.push_back(static_cast<int>(i));
      }
    }
    rm = build_region_matrix(program, ap.profile, ap.sites, in_loop, 0, 2, kPfuLutBudget);
    for (int c = 0; c < rm.k(); ++c) {
      const ExtInstDef& d = rm.candidates[static_cast<std::size_t>(c)].def;
      if (d.length() == 3) idx_i = c;
      if (d.length() == 2 && d.uops()[0].op == Opcode::kSll) idx_j = c;
      if (d.length() == 2 && d.uops()[0].op == Opcode::kAddu) idx_k = c;
    }
  }
};

TEST(RegionMatrix, PaperExampleSitesExtracted) {
  const PaperExample ex;
  ASSERT_EQ(ex.rm.site_indices.size(), 3u);  // I once, J twice
  int len3 = 0;
  int len2 = 0;
  for (const int i : ex.rm.site_indices) {
    const int len = ex.ap.sites[static_cast<std::size_t>(i)].length();
    if (len == 3) ++len3;
    if (len == 2) ++len2;
  }
  EXPECT_EQ(len3, 1);
  EXPECT_EQ(len2, 2);
}

TEST(RegionMatrix, PaperExampleCandidates) {
  const PaperExample ex;
  // Distinct candidates: I (3 ops), J (sll;addu), and the suffix addu;sll.
  EXPECT_EQ(ex.rm.k(), 3);
  ASSERT_GE(ex.idx_i, 0);
  ASSERT_GE(ex.idx_j, 0);
  ASSERT_GE(ex.idx_k, 0);
}

TEST(RegionMatrix, PaperExampleMatrixEntries) {
  const PaperExample ex;
  const auto& m = ex.rm.counts;
  const std::size_t I = static_cast<std::size_t>(ex.idx_i);
  const std::size_t J = static_cast<std::size_t>(ex.idx_j);
  // Figure 4: [I,I] = 1 maximal appearance of I.
  EXPECT_EQ(m[I][I], 1);
  // [J,J] = 2 maximal appearances of J.
  EXPECT_EQ(m[J][J], 2);
  // [J,I] = 1: J appears once inside I.
  EXPECT_EQ(m[J][I], 1);
  // I never fits inside J.
  EXPECT_EQ(m[I][J], 0);
}

TEST(RegionMatrix, RowSumIsTotalAppearances) {
  const PaperExample ex;
  // "The sum of entries along the Ith row equals the total number of
  // appearances of sequence I throughout this loop."
  const std::size_t J = static_cast<std::size_t>(ex.idx_j);
  int row_sum = 0;
  for (int c = 0; c < ex.rm.k(); ++c) {
    row_sum += ex.rm.counts[J][static_cast<std::size_t>(c)];
  }
  EXPECT_EQ(row_sum, 3);  // twice maximal + once inside I
}

TEST(RegionMatrix, SoloGainsFollowPaperArithmetic) {
  const PaperExample ex;
  const std::uint64_t iters = 50;
  // J alone: applies at 3 places, saving 1 cycle each -> 3/iteration.
  EXPECT_EQ(ex.rm.candidates[static_cast<std::size_t>(ex.idx_j)].solo_gain,
            3 * iters);
  // I alone: applies once, saving 2 cycles -> 2/iteration.
  EXPECT_EQ(ex.rm.candidates[static_cast<std::size_t>(ex.idx_i)].solo_gain,
            2 * iters);
}

TEST(RegionMatrix, BestTilingPrefersFullWhenAllowed) {
  const PaperExample ex;
  std::vector<bool> all(static_cast<std::size_t>(ex.rm.k()), true);
  // Tiling the I site with everything allowed: the full 3-op window saves 2
  // cycles, beating J (1 cycle); J+suffix overlap so only one can apply.
  for (std::size_t si = 0; si < ex.rm.site_indices.size(); ++si) {
    const SeqSite& site =
        ex.ap.sites[static_cast<std::size_t>(ex.rm.site_indices[si])];
    if (site.length() != 3) continue;
    std::uint64_t gain = 0;
    const auto chosen =
        best_tiling(site, ex.rm.windows[si], ex.rm.candidates, all, &gain);
    ASSERT_EQ(chosen.size(), 1u);
    EXPECT_EQ(ex.rm.windows[si][static_cast<std::size_t>(chosen[0])].candidate,
              ex.idx_i);
    EXPECT_EQ(gain, 2u * 50);
  }
}

TEST(RegionMatrix, SelectiveWithOnePfuChoosesJ) {
  // The paper: "If we are working with an architecture with only one PFU,
  // selecting the sequence with the highest total gain across the loop
  // would lead us to choose sequence J."
  const PaperExample ex;
  SelectPolicy policy;
  policy.num_pfus = 1;
  policy.time_threshold = 0.0;
  const Selection sel = select_selective(ex.ap, policy);
  ASSERT_EQ(sel.num_configs(), 1);
  EXPECT_EQ(sel.table.at(0).length(), 2);
  EXPECT_EQ(sel.table.at(0).uops()[0].op, Opcode::kSll);
  EXPECT_EQ(sel.table.at(0).uops()[1].op, Opcode::kAddu);
  // Applied at all three places.
  EXPECT_EQ(sel.apps.size(), 3u);
}

TEST(RegionMatrix, SelectiveWithTwoPfusCoversEverything) {
  const PaperExample ex;
  SelectPolicy policy;
  policy.num_pfus = 2;
  policy.time_threshold = 0.0;
  const Selection sel = select_selective(ex.ap, policy);
  // Two distinct maximal sequences exist (I and J); both fit in 2 PFUs.
  EXPECT_EQ(sel.num_configs(), 2);
  EXPECT_EQ(sel.apps.size(), 3u);
}

TEST(BestTiling, DisjointWindowsCombine) {
  // A 4-op chain where only the 2-op sequence is allowed: tiling should
  // apply it twice (members 0-1 and 2-3).
  const Program p = assemble(R"(
        li $t1, 3
        li $t3, 5
        li $t0, 0
  loop: sll  $t2, $t1, 1
        addu $t2, $t2, $t3
        sll  $t2, $t2, 1
        addu $t2, $t2, $t3
        sw   $t2, 0($sp)
        addiu $t0, $t0, 1
        slti $at, $t0, 10
        bne $at, $zero, loop
        halt
  )");
  AnalyzedProgram ap;
  ap.program = &p;
  ap.cfg = Cfg::build(p);
  ap.liveness = compute_liveness(p, ap.cfg);
  ap.profile = profile_program(p, 1u << 20);
  ap.sites = extract_sites(p, ap.cfg, ap.liveness, ap.profile, {});
  ASSERT_EQ(ap.sites.size(), 1u);
  ASSERT_EQ(ap.sites[0].length(), 4);

  const RegionMatrix rm =
      build_region_matrix(p, ap.profile, ap.sites, {0}, 0, 2, kPfuLutBudget);
  // Find the sll;addu candidate.
  int idx = -1;
  for (int c = 0; c < rm.k(); ++c) {
    const ExtInstDef& d = rm.candidates[static_cast<std::size_t>(c)].def;
    if (d.length() == 2 && d.uops()[0].op == Opcode::kSll &&
        d.uops()[1].op == Opcode::kAddu) {
      idx = c;
    }
  }
  ASSERT_GE(idx, 0);
  std::vector<bool> allowed(static_cast<std::size_t>(rm.k()), false);
  allowed[static_cast<std::size_t>(idx)] = true;
  std::uint64_t gain = 0;
  const auto chosen =
      best_tiling(ap.sites[0], rm.windows[0], rm.candidates, allowed, &gain);
  EXPECT_EQ(chosen.size(), 2u);
  EXPECT_EQ(gain, 2u * 10);  // two windows x 1 cycle x 10 iterations
}

}  // namespace
}  // namespace t1000
