#include "extinst/rewrite.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "extinst/select.hpp"
#include "sim/executor.hpp"

namespace t1000 {
namespace {

AnalyzedProgram analyze(const Program& p) {
  AnalyzedProgram ap;
  ap.program = &p;
  ap.cfg = Cfg::build(p);
  ap.liveness = compute_liveness(p, ap.cfg);
  ap.profile = profile_program(p, 1u << 22);
  ap.sites = extract_sites(p, ap.cfg, ap.liveness, ap.profile, {});
  return ap;
}

// Applies greedy selection and rewrites; returns the rewritten program and
// the table.
std::pair<Program, ExtInstTable> greedy_rewrite(const Program& p) {
  const AnalyzedProgram ap = analyze(p);
  Selection sel = select_greedy(ap);
  RewriteResult rr = rewrite_program(p, sel.apps);
  return {std::move(rr.program), std::move(sel.table)};
}

TEST(Rewrite, ReplacesChainWithExt) {
  const Program p = assemble(R"(
        li $t1, 100
        li $t3, 3
        li $t0, 0
  loop: sll $t5, $t3, 4
        addu $t6, $t5, $t1
        sw  $t6, 0($sp)
        addiu $t0, $t0, 1
        slti $at, $t0, 8
        bne $at, $zero, loop
        halt
  )");
  const auto [q, table] = greedy_rewrite(p);
  EXPECT_EQ(q.size(), p.size() - 1);  // two ops became one EXT
  int ext_count = 0;
  for (const Instruction& ins : q.text) {
    if (ins.op == Opcode::kExt) ++ext_count;
  }
  EXPECT_EQ(ext_count, 1);
  EXPECT_EQ(table.size(), 1);
}

TEST(Rewrite, BranchTargetsRemapped) {
  const Program p = assemble(R"(
        li $t1, 100
        li $t3, 3
        li $t0, 0
  loop: sll $t5, $t3, 4
        addu $t6, $t5, $t1
        sw  $t6, 0($sp)
        addiu $t0, $t0, 1
        slti $at, $t0, 8
        bne $at, $zero, loop
        halt
  )");
  const auto [q, table] = greedy_rewrite(p);
  // The loop back edge must point at the EXT (the fused block head).
  const std::int32_t loop_head = q.text_symbols.at("loop");
  EXPECT_EQ(q.text[static_cast<std::size_t>(loop_head)].op, Opcode::kExt);
  bool found_branch = false;
  for (const Instruction& ins : q.text) {
    if (ins.op == Opcode::kBne) {
      EXPECT_EQ(ins.imm, loop_head);
      found_branch = true;
    }
  }
  EXPECT_TRUE(found_branch);
}

TEST(Rewrite, FunctionalEquivalence) {
  const Program p = assemble(R"(
        li $t1, 100
        li $t3, 3
        la $t4, buf
        li $t0, 0
  loop: sll $t5, $t3, 4
        addu $t6, $t5, $t1
        sll $t7, $t6, 1
        xori $t7, $t7, 0x55
        sw  $t7, 0($t4)
        lw  $t8, 0($t4)
        addu $v0, $v0, $t8
        addiu $t3, $t3, 1
        andi $t3, $t3, 0xFF
        addiu $t0, $t0, 1
        slti $at, $t0, 100
        bne $at, $zero, loop
        halt
        .data
  buf:  .space 16
  )");
  Executor ref(p);
  ref.run(1u << 20);
  ASSERT_TRUE(ref.halted());

  const auto [q, table] = greedy_rewrite(p);
  EXPECT_LT(q.size(), p.size());
  Executor opt(q, &table);
  opt.run(1u << 20);
  ASSERT_TRUE(opt.halted());
  EXPECT_EQ(opt.reg(2), ref.reg(2));  // $v0 checksum matches
  EXPECT_LT(opt.steps_executed(), ref.steps_executed());
}

TEST(Rewrite, OverlappingApplicationsThrow) {
  const Program p = assemble(R"(
      addiu $t0, $t0, 1
      addiu $t0, $t0, 2
      halt
  )");
  Application a;
  a.positions = {0, 1};
  a.conf = 0;
  Application b;
  b.positions = {1};
  b.conf = 0;
  EXPECT_THROW(rewrite_program(p, {a, b}), std::invalid_argument);
}

TEST(Rewrite, EmptyApplicationThrows) {
  const Program p = assemble("halt");
  Application a;
  EXPECT_THROW(rewrite_program(p, {a}), std::invalid_argument);
}

TEST(Rewrite, NoApplicationsIsIdentity) {
  const Program p = assemble(R"(
      li $t0, 1
      halt
  )");
  const RewriteResult rr = rewrite_program(p, {});
  EXPECT_EQ(rr.program.text, p.text);
  EXPECT_EQ(rr.index_map[0], 0);
  EXPECT_EQ(rr.index_map[1], 1);
}

TEST(Rewrite, IndexMapForwardsDeletedPositions) {
  const Program p = assemble(R"(
      addiu $t1, $t1, 1
      addiu $t1, $t1, 2
      sw $t1, 0($sp)
      halt
  )");
  Application a;
  a.positions = {0, 1};
  a.conf = 0;
  a.output = 9;
  a.inputs = {9, 0};
  a.num_inputs = 1;
  const RewriteResult rr = rewrite_program(p, {a});
  EXPECT_EQ(rr.program.size(), 3);
  EXPECT_EQ(rr.index_map[0], 0);  // deleted -> forwarded to the EXT
  EXPECT_EQ(rr.index_map[1], 0);  // EXT landed here
  EXPECT_EQ(rr.index_map[2], 1);
  EXPECT_EQ(rr.index_map[3], 2);
  EXPECT_EQ(rr.program.text[0].op, Opcode::kExt);
}

TEST(Rewrite, JalReturnsToRemappedSite) {
  // A call inside a loop whose body gets fused: the return address must
  // land after the call in the *new* program (return addresses are computed
  // at run time, so this exercises consistency end to end).
  const Program p = assemble(R"(
  main: li $t1, 9
        li $t0, 0
  loop: sll $t5, $t1, 2
        addu $t6, $t5, $t1
        move $a0, $t6
        jal f
        addu $v0, $v0, $v1
        addiu $t0, $t0, 1
        slti $at, $t0, 20
        bne $at, $zero, loop
        halt
  f:    addiu $v1, $a0, 3
        jr $ra
  )");
  Executor ref(p);
  ref.run(1u << 20);
  ASSERT_TRUE(ref.halted());

  const auto [q, table] = greedy_rewrite(p);
  Executor opt(q, &table);
  opt.run(1u << 20);
  ASSERT_TRUE(opt.halted());
  EXPECT_EQ(opt.reg(2), ref.reg(2));
}

}  // namespace
}  // namespace t1000
