#include "extinst/extract.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "extinst/select.hpp"

namespace t1000 {
namespace {

// Analyzes a source string with a permissive policy (no execution
// requirement so straight-line tests need not run hot).
AnalyzedProgram analyze(const Program& p, ExtractPolicy policy = {}) {
  AnalyzedProgram ap;
  ap.program = &p;
  ap.cfg = Cfg::build(p);
  ap.liveness = compute_liveness(p, ap.cfg);
  ap.profile = profile_program(p, 1u << 22);
  ap.sites = extract_sites(p, ap.cfg, ap.liveness, ap.profile, policy);
  return ap;
}

TEST(Extract, FindsSimpleChain) {
  // sll -> addu chain feeding a store; the temp $t5 dies at the addu.
  const Program p = assemble(R"(
        li $t1, 100
        li $t3, 3
        la $t4, buf
        li $t0, 0
  loop: sll $t5, $t3, 4
        addu $t6, $t5, $t1
        sw  $t6, 0($t4)
        addiu $t0, $t0, 1
        slti $at, $t0, 8
        bne $at, $zero, loop
        halt
        .data
  buf:  .space 64
  )");
  const AnalyzedProgram ap = analyze(p);
  ASSERT_GE(ap.sites.size(), 1u);
  const SeqSite* chain = nullptr;
  for (const SeqSite& s : ap.sites) {
    if (s.positions.front() == p.text_symbols.at("loop")) chain = &s;
  }
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->length(), 2);
  EXPECT_EQ(chain->exec_count, 8u);
  EXPECT_GE(chain->loop, 0);
  const WindowView v = full_view(p, *chain);
  EXPECT_EQ(v.num_inputs, 2);  // $t3 and $t1
  EXPECT_EQ(v.output, 14);     // $t6
  EXPECT_EQ(v.def.eval(3, 100), (3u << 4) + 100);
}

TEST(Extract, TempWithTwoReadersBreaksChain) {
  const Program p = assemble(R"(
        li $t1, 5
        sll $t5, $t1, 2
        addu $t6, $t5, $t1   # reader 1 of $t5
        addu $t7, $t5, $t6   # reader 2 of $t5
        sw $t6, 0($sp)
        sw $t7, 4($sp)
        halt
  )");
  const AnalyzedProgram ap = analyze(p);
  // The sll cannot fuse with the first addu ($t5 read twice); the two addus
  // can't chain into one sequence with 3 inputs either. Allowed outcome:
  // possibly a 2-op chain addu->addu? addu $t7 reads $t5 (external) and
  // $t6 (link): 2 externals total ($t5,$t1->no: $t6 = link). Inputs of the
  // pair = {$t5, $t1} = 2. That chain is legal.
  for (const SeqSite& s : ap.sites) {
    for (const std::int32_t pos : s.positions) {
      EXPECT_NE(pos, 1) << "sll with two readers must not be fused";
    }
  }
}

TEST(Extract, EscapingTempBreaksChain) {
  // $t5 is read in the next block, so it must not be fused away.
  const Program p = assemble(R"(
        li $t1, 5
        sll $t5, $t1, 2
        addu $t6, $t5, $t1
        beq $t6, $zero, next
  next: sw $t5, 0($sp)
        halt
  )");
  const AnalyzedProgram ap = analyze(p);
  for (const SeqSite& s : ap.sites) {
    EXPECT_EQ(s.length(), 0) << "no multi-op chain should survive";
  }
  EXPECT_TRUE(ap.sites.empty());
}

TEST(Extract, WideValuesAreNotCandidates) {
  const Program p = assemble(R"(
        li $t1, 0x100000      # 21 bits > 18
        li $t0, 0
  loop: sll $t5, $t1, 2
        addu $t6, $t5, $t1
        sw $t6, 0($sp)
        addiu $t0, $t0, 1
        slti $at, $t0, 4
        bne $at, $zero, loop
        halt
  )");
  const AnalyzedProgram ap = analyze(p);
  for (const SeqSite& s : ap.sites) {
    for (const std::int32_t pos : s.positions) {
      EXPECT_NE(pos, 2);
      EXPECT_NE(pos, 3);
    }
  }
}

TEST(Extract, WidthPolicyIsConfigurable) {
  const Program p = assemble(R"(
        li $t1, 0x100000
        li $t0, 0
  loop: sll $t5, $t1, 2
        addu $t6, $t5, $t1
        sw $t6, 0($sp)
        addiu $t0, $t0, 1
        slti $at, $t0, 4
        bne $at, $zero, loop
        halt
  )");
  ExtractPolicy policy;
  policy.max_width = 32;
  const AnalyzedProgram ap = analyze(p, policy);
  bool found = false;
  for (const SeqSite& s : ap.sites) {
    if (s.positions.front() == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Extract, ThreeExternalInputsRejected) {
  // addu(a,b) -> addu(.,c) would need 3 input ports; the chain must stop.
  const Program p = assemble(R"(
        li $t1, 1
        li $t2, 2
        li $t3, 3
        b body
  body: addu $t5, $t1, $t2
        addu $t6, $t5, $t3
        sw $t6, 0($sp)
        halt
  )");
  const AnalyzedProgram ap = analyze(p);
  for (const SeqSite& s : ap.sites) {
    EXPECT_LT(s.length(), 2);
  }
  EXPECT_TRUE(ap.sites.empty());
}

TEST(Extract, TwoInputChainAccepted) {
  // Same shape but the second op reuses input $t1: 2 externals total.
  const Program p = assemble(R"(
        li $t1, 1
        li $t2, 2
        b body
  body: addu $t5, $t1, $t2
        addu $t6, $t5, $t1
        sw $t6, 0($sp)
        halt
  )");
  const AnalyzedProgram ap = analyze(p);
  ASSERT_EQ(ap.sites.size(), 1u);
  EXPECT_EQ(ap.sites[0].length(), 2);
  const WindowView v = full_view(p, ap.sites[0]);
  EXPECT_EQ(v.num_inputs, 2);
  EXPECT_EQ(v.def.eval(1, 2), 4u);  // (1+2)+1
}

TEST(Extract, AccumulatorChainSameRegister) {
  // Classic accumulator: every member writes $t2 (the paper's Figure 3).
  const Program p = assemble(R"(
        li $t3, 3
        li $t1, 7
        b body
  body: sll $t2, $t3, 4
        addu $t2, $t2, $t1
        sll $t2, $t2, 2
        sw $t2, 0($sp)
        halt
  )");
  const AnalyzedProgram ap = analyze(p);
  ASSERT_EQ(ap.sites.size(), 1u);
  EXPECT_EQ(ap.sites[0].length(), 3);
  const WindowView v = full_view(p, ap.sites[0]);
  EXPECT_EQ(v.def.eval(3, 7), ((3u << 4) + 7) << 2);
  EXPECT_EQ(v.output, 10);  // $t2
}

TEST(Extract, ChainCapsAtMaxLength) {
  // 10 dependent addius; must split into chains of at most kMaxUops.
  std::string src = "  li $t0, 1\n  b body\nbody:\n";
  for (int i = 0; i < 10; ++i) src += "  addiu $t0, $t0, 1\n";
  src += "  sw $t0, 0($sp)\n  halt\n";
  const Program p = assemble(src);
  const AnalyzedProgram ap = analyze(p);
  ASSERT_GE(ap.sites.size(), 1u);
  int covered = 0;
  for (const SeqSite& s : ap.sites) {
    EXPECT_LE(s.length(), kMaxUops);
    covered += s.length();
  }
  EXPECT_EQ(covered, 10);
}

TEST(Extract, NeverExecutedCodeSkippedByDefault) {
  const Program p = assemble(R"(
        j end
        sll $t5, $t1, 2      # dead code
        addu $t6, $t5, $t1
        sw $t6, 0($sp)
  end:  halt
  )");
  const AnalyzedProgram ap = analyze(p);
  EXPECT_TRUE(ap.sites.empty());
}

TEST(Extract, MemoryOpsNeverFused) {
  const Program p = assemble(R"(
        li $t1, 4
  loop: lw $t5, 0($sp)
        addu $t6, $t5, $t1
        sw $t6, 0($sp)
        addiu $t1, $t1, -1
        bgtz $t1, loop
        halt
  )");
  const AnalyzedProgram ap = analyze(p);
  for (const SeqSite& s : ap.sites) {
    for (const std::int32_t pos : s.positions) {
      EXPECT_FALSE(is_mem(p.text[static_cast<std::size_t>(pos)].op));
    }
  }
}

TEST(Extract, SiteCarriesLoopId) {
  const Program p = assemble(R"(
        li $t1, 3
        li $t0, 0
  loop: sll $t5, $t1, 2
        addu $t6, $t5, $t1
        sw $t6, 0($sp)
        addiu $t0, $t0, 1
        slti $at, $t0, 4
        bne $at, $zero, loop
        sll $t5, $t1, 3      # outside the loop
        addu $t7, $t5, $t1
        sw $t7, 4($sp)
        halt
  )");
  const AnalyzedProgram ap = analyze(p);
  ASSERT_EQ(ap.sites.size(), 2u);
  int in_loop = 0;
  int outside = 0;
  for (const SeqSite& s : ap.sites) {
    (s.loop >= 0 ? in_loop : outside) += 1;
  }
  EXPECT_EQ(in_loop, 1);
  EXPECT_EQ(outside, 1);
}

}  // namespace
}  // namespace t1000
