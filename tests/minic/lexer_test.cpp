#include <gtest/gtest.h>

#include "minic/token.hpp"

namespace t1000::minic {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptySourceYieldsEof) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEof);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto toks = lex("int if else while for return break continue foo _x");
  const std::vector<Tok> expected = {
      Tok::kInt, Tok::kIf, Tok::kElse, Tok::kWhile, Tok::kFor, Tok::kReturn,
      Tok::kBreak, Tok::kContinue, Tok::kIdent, Tok::kIdent, Tok::kEof};
  EXPECT_EQ(kinds("int if else while for return break continue foo _x"),
            expected);
  EXPECT_EQ(toks[8].text, "foo");
  EXPECT_EQ(toks[9].text, "_x");
}

TEST(Lexer, NumbersDecimalAndHex) {
  const auto toks = lex("0 42 0x1F 0xABCDEF");
  EXPECT_EQ(toks[0].number, 0);
  EXPECT_EQ(toks[1].number, 42);
  EXPECT_EQ(toks[2].number, 0x1F);
  EXPECT_EQ(toks[3].number, 0xABCDEF);
}

TEST(Lexer, OperatorsIncludingDigraphs) {
  const std::vector<Tok> expected = {
      Tok::kShl, Tok::kShr, Tok::kLe, Tok::kGe, Tok::kEq, Tok::kNe,
      Tok::kAndAnd, Tok::kOrOr, Tok::kLt, Tok::kGt, Tok::kAssign,
      Tok::kAmp, Tok::kPipe, Tok::kEof};
  EXPECT_EQ(kinds("<< >> <= >= == != && || < > = & |"), expected);
}

TEST(Lexer, CommentsAreSkipped) {
  EXPECT_EQ(kinds("1 // line comment 2\n3"),
            (std::vector<Tok>{Tok::kNumber, Tok::kNumber, Tok::kEof}));
  EXPECT_EQ(kinds("1 /* block\ncomment */ 2"),
            (std::vector<Tok>{Tok::kNumber, Tok::kNumber, Tok::kEof}));
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = lex("a\nb\n\nc");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(lex("@"), CompileError);
  EXPECT_THROW(lex("/* unterminated"), CompileError);
  EXPECT_THROW(lex("0x"), CompileError);
  EXPECT_THROW(lex("99999999999"), CompileError);
}

}  // namespace
}  // namespace t1000::minic
