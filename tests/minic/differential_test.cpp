// Differential property test: random MiniC programs must produce identical
// results from (a) the reference AST interpreter and (b) compilation to
// T1000 assembly + functional simulation. This cross-checks the lexer,
// parser, code generator, assembler, and simulator against one another.
#include <gtest/gtest.h>

#include <sstream>

#include "interp.hpp"
#include "minic/minic.hpp"
#include "sim/executor.hpp"

namespace t1000::minic {
namespace {

class Rng {
 public:
  explicit Rng(std::uint32_t seed) : state_(seed * 2654435761u + 17) {}
  std::uint32_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  std::uint32_t below(std::uint32_t n) { return next() % n; }

 private:
  std::uint32_t state_;
};

// Generates a random program over locals a..f and a global array g[16].
// All loops are bounded counters; divisors are forced odd (never zero).
class ProgramGen {
 public:
  explicit ProgramGen(std::uint32_t seed) : rng_(seed) {}

  std::string generate() {
    std::ostringstream os;
    os << "int g[16] = {3, 1, 4, 1, 5, 9, 2, 6};\n";
    os << "int mixer(int a, int b) { return (a ^ b) + (a & 0xFF); }\n";
    os << "int main() {\n";
    for (char v = 'a'; v <= 'f'; ++v) {
      os << "  int " << v << " = " << rng_.below(200) << ";\n";
    }
    const int stmts = 6 + static_cast<int>(rng_.below(8));
    for (int i = 0; i < stmts; ++i) gen_stmt(os, 1, 2);
    os << "  return (a ^ b) + (c ^ d) + (e ^ f) + g["
       << rng_.below(16) << "];\n";
    os << "}\n";
    return os.str();
  }

 private:
  char var() { return static_cast<char>('a' + rng_.below(6)); }

  std::string expr(int depth) {
    if (depth <= 0 || rng_.below(3) == 0) {
      switch (rng_.below(3)) {
        case 0: return std::string(1, var());
        case 1: return std::to_string(rng_.below(1000));
        default: return "g[" + std::string(1, var()) + " & 15]";
      }
    }
    const std::string a = expr(depth - 1);
    const std::string b = expr(depth - 1);
    switch (rng_.below(12)) {
      case 0: return "(" + a + " + " + b + ")";
      case 1: return "(" + a + " - " + b + ")";
      case 2: return "(" + a + " * " + b + ")";
      case 3: return "(" + a + " & " + b + ")";
      case 4: return "(" + a + " | " + b + ")";
      case 5: return "(" + a + " ^ " + b + ")";
      case 6: return "(" + a + " << " + std::to_string(rng_.below(6)) + ")";
      case 7: return "(" + a + " >> " + std::to_string(rng_.below(6)) + ")";
      case 8: return "(" + a + " / (" + b + " | 1))";
      case 9: return "(" + a + " % (" + b + " | 1))";
      case 10: return "(" + a + " < " + b + ")";
      default: return "mixer(" + a + ", " + b + ")";
    }
  }

  std::string cond() {
    const std::string a = expr(1);
    const std::string b = expr(1);
    const char* ops[] = {"<", "<=", ">", ">=", "==", "!="};
    return a + " " + ops[rng_.below(6)] + " " + b;
  }

  void gen_stmt(std::ostringstream& os, int indent, int depth) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    switch (depth > 0 ? rng_.below(5) : 0) {
      case 0:  // assignment
      case 1:
        if (rng_.below(4) == 0) {
          os << pad << "g[" << var() << " & 15] = " << expr(2) << ";\n";
        } else {
          os << pad << var() << " = " << expr(2) << ";\n";
        }
        return;
      case 2: {  // if / else
        os << pad << "if (" << cond() << ") {\n";
        gen_stmt(os, indent + 1, depth - 1);
        os << pad << "} else {\n";
        gen_stmt(os, indent + 1, depth - 1);
        os << pad << "}\n";
        return;
      }
      case 3: {  // bounded for loop
        const char iv = 'w';  // loop counter never aliases a..f
        os << pad << "for (int " << iv << " = 0; " << iv << " < "
           << 2 + rng_.below(8) << "; " << iv << " = " << iv << " + 1) {\n";
        gen_stmt(os, indent + 1, depth - 1);
        if (rng_.below(3) == 0) {
          os << pad << "  if (" << cond() << ") { "
             << (rng_.below(2) == 0 ? "break" : "continue") << "; }\n";
        }
        os << pad << "}\n";
        return;
      }
      default: {  // bounded while loop
        os << pad << "{ int n = " << 1 + rng_.below(6) << ";\n";
        os << pad << "  while (n > 0) {\n";
        gen_stmt(os, indent + 2, depth - 1);
        os << pad << "    n = n - 1;\n";
        os << pad << "  }\n" << pad << "}\n";
        return;
      }
    }
  }

  Rng rng_;
};

class MiniCDifferential : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MiniCDifferential, CompiledMatchesInterpreter) {
  const std::string src = ProgramGen(GetParam()).generate();

  const TranslationUnit unit = parse(lex(src));
  Interp interp(unit);
  const std::int32_t expected = interp.run_main();

  const Program p = compile(src);
  Executor e(p);
  e.run(1u << 22);
  ASSERT_TRUE(e.halted()) << "seed " << GetParam() << "\n" << src;
  EXPECT_EQ(e.reg(2), static_cast<std::uint32_t>(expected))
      << "seed " << GetParam() << "\n" << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniCDifferential, ::testing::Range(1u, 61u));

}  // namespace
}  // namespace t1000::minic
