// Reference AST interpreter for MiniC differential testing: evaluates a
// TranslationUnit with the same semantics the generated code must have
// (32-bit wrapping, arithmetic right shift, C-style truncating division).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minic/ast.hpp"
#include "minic/token.hpp"

namespace t1000::minic {

class Interp {
 public:
  explicit Interp(const TranslationUnit& unit) : unit_(unit) {
    for (const Global& g : unit.globals) {
      std::vector<std::int32_t> cells(static_cast<std::size_t>(g.count), 0);
      for (std::size_t i = 0; i < g.init.size(); ++i) cells[i] = g.init[i];
      globals_[g.name] = std::move(cells);
    }
    for (const Function& fn : unit.functions) functions_[fn.name] = &fn;
  }

  std::int32_t run_main() { return call("main", {}); }

 private:
  enum class Flow { kNormal, kReturn, kBreak, kContinue };

  struct Frame {
    std::vector<std::map<std::string, std::int32_t>> scopes;
    std::int32_t ret = 0;
  };

  std::int32_t call(const std::string& name,
                    const std::vector<std::int32_t>& args) {
    if (++depth_ > 200) throw CompileError(0, "interp: recursion too deep");
    const Function* fn = functions_.at(name);
    Frame frame;
    frame.scopes.emplace_back();
    for (std::size_t i = 0; i < fn->params.size(); ++i) {
      frame.scopes.back()[fn->params[i]] = args[i];
    }
    exec(*fn->body, frame);
    --depth_;
    return frame.ret;
  }

  std::int32_t* find_var(Frame& frame, const std::string& name) {
    for (auto it = frame.scopes.rbegin(); it != frame.scopes.rend(); ++it) {
      const auto v = it->find(name);
      if (v != it->end()) return &v->second;
    }
    const auto g = globals_.find(name);
    if (g != globals_.end() && g->second.size() == 1) return &g->second[0];
    return nullptr;
  }

  std::int32_t eval(const Expr& e, Frame& frame) {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return e.number;
      case Expr::Kind::kVar:
        return *find_var(frame, e.name);
      case Expr::Kind::kIndex: {
        auto& cells = globals_.at(e.name);
        const std::uint32_t idx =
            static_cast<std::uint32_t>(eval(*e.lhs, frame));
        return cells.at(idx);
      }
      case Expr::Kind::kUnary: {
        const std::int32_t v = eval(*e.lhs, frame);
        switch (e.un_op) {
          case UnOp::kNeg: return static_cast<std::int32_t>(0u - static_cast<std::uint32_t>(v));
          case UnOp::kNot: return ~v;
          case UnOp::kLogicalNot: return v == 0 ? 1 : 0;
        }
        return 0;
      }
      case Expr::Kind::kBinary: {
        if (e.bin_op == BinOp::kLogicalAnd) {
          return eval(*e.lhs, frame) != 0 && eval(*e.rhs, frame) != 0 ? 1 : 0;
        }
        if (e.bin_op == BinOp::kLogicalOr) {
          return eval(*e.lhs, frame) != 0 || eval(*e.rhs, frame) != 0 ? 1 : 0;
        }
        const std::int32_t a = eval(*e.lhs, frame);
        const std::int32_t b = eval(*e.rhs, frame);
        const std::uint32_t ua = static_cast<std::uint32_t>(a);
        const std::uint32_t ub = static_cast<std::uint32_t>(b);
        switch (e.bin_op) {
          case BinOp::kAdd: return static_cast<std::int32_t>(ua + ub);
          case BinOp::kSub: return static_cast<std::int32_t>(ua - ub);
          case BinOp::kMul: return static_cast<std::int32_t>(ua * ub);
          case BinOp::kDiv: return b == 0 ? 0 : div_trunc(a, b);
          case BinOp::kRem: return b == 0 ? 0 : rem_trunc(a, b);
          case BinOp::kAnd: return a & b;
          case BinOp::kOr: return a | b;
          case BinOp::kXor: return a ^ b;
          case BinOp::kShl: return static_cast<std::int32_t>(ua << (ub & 31));
          case BinOp::kShr: return a >> (ub & 31);
          case BinOp::kLt: return a < b;
          case BinOp::kLe: return a <= b;
          case BinOp::kGt: return a > b;
          case BinOp::kGe: return a >= b;
          case BinOp::kEq: return a == b;
          case BinOp::kNe: return a != b;
          default: return 0;
        }
      }
      case Expr::Kind::kAssign: {
        const std::int32_t v = eval(*e.rhs, frame);
        const Expr& target = *e.lhs;
        if (target.kind == Expr::Kind::kVar) {
          *find_var(frame, target.name) = v;
        } else {
          auto& cells = globals_.at(target.name);
          cells.at(static_cast<std::uint32_t>(eval(*target.lhs, frame))) = v;
        }
        return v;
      }
      case Expr::Kind::kCall: {
        std::vector<std::int32_t> args;
        for (const ExprPtr& a : e.args) args.push_back(eval(*a, frame));
        return call(e.name, args);
      }
    }
    return 0;
  }

  static std::int32_t div_trunc(std::int32_t a, std::int32_t b) {
    // Avoid INT_MIN/-1 UB in the reference (the generated code wraps).
    if (a == INT32_MIN && b == -1) return a;
    return a / b;
  }
  static std::int32_t rem_trunc(std::int32_t a, std::int32_t b) {
    if (a == INT32_MIN && b == -1) return 0;
    return a % b;
  }

  Flow exec(const Stmt& s, Frame& frame) {
    switch (s.kind) {
      case Stmt::Kind::kExpr:
        eval(*s.expr, frame);
        return Flow::kNormal;
      case Stmt::Kind::kDecl:
        frame.scopes.back()[s.name] =
            s.expr != nullptr ? eval(*s.expr, frame) : 0;
        return Flow::kNormal;
      case Stmt::Kind::kIf:
        if (eval(*s.expr, frame) != 0) return exec(*s.body, frame);
        if (s.else_body != nullptr) return exec(*s.else_body, frame);
        return Flow::kNormal;
      case Stmt::Kind::kWhile:
        while (eval(*s.expr, frame) != 0) {
          const Flow f = exec(*s.body, frame);
          if (f == Flow::kReturn) return f;
          if (f == Flow::kBreak) break;
        }
        return Flow::kNormal;
      case Stmt::Kind::kFor: {
        frame.scopes.emplace_back();
        if (s.init != nullptr) exec(*s.init, frame);
        while (s.expr == nullptr || eval(*s.expr, frame) != 0) {
          const Flow f = exec(*s.body, frame);
          if (f == Flow::kReturn) {
            frame.scopes.pop_back();
            return f;
          }
          if (f == Flow::kBreak) break;
          if (s.step != nullptr) eval(*s.step, frame);
        }
        frame.scopes.pop_back();
        return Flow::kNormal;
      }
      case Stmt::Kind::kReturn:
        frame.ret = s.expr != nullptr ? eval(*s.expr, frame) : 0;
        return Flow::kReturn;
      case Stmt::Kind::kBreak:
        return Flow::kBreak;
      case Stmt::Kind::kContinue:
        return Flow::kContinue;
      case Stmt::Kind::kBlock: {
        frame.scopes.emplace_back();
        for (const StmtPtr& child : s.stmts) {
          const Flow f = exec(*child, frame);
          if (f != Flow::kNormal) {
            frame.scopes.pop_back();
            return f;
          }
        }
        frame.scopes.pop_back();
        return Flow::kNormal;
      }
    }
    return Flow::kNormal;
  }

  const TranslationUnit& unit_;
  std::map<std::string, std::vector<std::int32_t>> globals_;
  std::map<std::string, const Function*> functions_;
  int depth_ = 0;
};

}  // namespace t1000::minic
