// MiniC x extended-instruction pipeline: the selector must find chains in
// *compiled* code (the paper's actual setting) and the rewrite must
// preserve the compiled program's semantics.
#include <gtest/gtest.h>

#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "minic/minic.hpp"
#include "sim/executor.hpp"
#include "uarch/timing.hpp"

namespace t1000::minic {
namespace {

const char* kKernel = R"(
  int frame[128];
  int main() {
    int state = 0;
    int acc = 0;
    for (int r = 0; r < 30; r = r + 1) {
      for (int i = 0; i < 128; i = i + 1) {
        frame[i] = (i * 29 + r * 7) & 0xFFF;
      }
      for (int i = 0; i < 128; i = i + 1) {
        int x = frame[i];
        int y = ((x << 2) + state >> 1) + 21;
        y = y + x;
        state = (y >> 2) & 0x7FF;
        acc = acc + (y ^ (x << 1));
      }
    }
    return acc & 0xFFFFFF;
  }
)";

TEST(MiniCPipeline, CompiledCodeYieldsCandidateChains) {
  const Program p = compile(kKernel);
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  EXPECT_GE(ap.sites.size(), 3u);
  bool has_multi_op_hot_chain = false;
  for (const SeqSite& s : ap.sites) {
    if (s.length() >= 3 && s.exec_count > 1000) has_multi_op_hot_chain = true;
  }
  EXPECT_TRUE(has_multi_op_hot_chain)
      << "compiled hot loop should carry fusable chains";
}

TEST(MiniCPipeline, RewritePreservesCompiledSemantics) {
  const Program p = compile(kKernel);
  Executor ref(p);
  ref.run(1u << 24);
  ASSERT_TRUE(ref.halted());

  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  for (const int pfus : {1, 2, 4}) {
    SelectPolicy policy;
    policy.num_pfus = pfus;
    Selection sel = select_selective(ap, policy);
    const RewriteResult rr = rewrite_program(p, sel.apps);
    Executor opt(rr.program, &sel.table);
    opt.run(1u << 24);
    ASSERT_TRUE(opt.halted());
    EXPECT_EQ(opt.reg(2), ref.reg(2)) << pfus << " PFUs";
  }

  Selection greedy = select_greedy(ap);
  const RewriteResult rr = rewrite_program(p, greedy.apps);
  Executor opt(rr.program, &greedy.table);
  opt.run(1u << 24);
  EXPECT_EQ(opt.reg(2), ref.reg(2));
}

TEST(MiniCPipeline, PfusSpeedUpCompiledCode) {
  const Program p = compile(kKernel);
  const AnalyzedProgram ap = analyze_program(p, 1u << 24);
  SelectPolicy policy;
  policy.num_pfus = 2;
  Selection sel = select_selective(ap, policy);
  ASSERT_FALSE(sel.apps.empty());
  const RewriteResult rr = rewrite_program(p, sel.apps);

  MachineConfig base_cfg;
  MachineConfig pfu_cfg;
  pfu_cfg.pfu = {.count = 2, .reconfig_latency = 10};
  const SimStats base = simulate({.program = &p, .machine = base_cfg});
  const SimStats fast = simulate({.program = &rr.program, .ext_table = &sel.table, .machine = pfu_cfg});
  EXPECT_LT(fast.cycles, base.cycles);
  // Fused instructions shrink the committed stream too.
  EXPECT_LT(fast.committed, base.committed);
}

}  // namespace
}  // namespace t1000::minic
