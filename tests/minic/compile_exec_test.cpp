// MiniC end-to-end correctness: compile a program and execute it on the
// functional simulator, checking main's return value ($v0).
#include <gtest/gtest.h>

#include "minic/minic.hpp"
#include "sim/executor.hpp"

namespace t1000::minic {
namespace {

std::uint32_t run(const std::string& src, std::uint64_t max_steps = 1u << 22) {
  const Program p = compile(src);
  Executor e(p);
  e.run(max_steps);
  EXPECT_TRUE(e.halted()) << "program did not halt:\n" << src;
  return e.reg(2);  // $v0
}

TEST(MiniC, ReturnConstant) {
  EXPECT_EQ(run("int main() { return 42; }"), 42u);
}

TEST(MiniC, MissingReturnYieldsZero) {
  EXPECT_EQ(run("int main() { 5; }"), 0u);
}

TEST(MiniC, Arithmetic) {
  EXPECT_EQ(run("int main() { return 2 + 3 * 4; }"), 14u);
  EXPECT_EQ(run("int main() { return (2 + 3) * 4; }"), 20u);
  EXPECT_EQ(run("int main() { return 10 - 3 - 2; }"), 5u);  // left assoc
  EXPECT_EQ(run("int main() { return -7 + 10; }"), 3u);
  EXPECT_EQ(run("int main() { return 0 - 5; }"), 0xFFFFFFFBu);
}

TEST(MiniC, BitwiseAndShifts) {
  EXPECT_EQ(run("int main() { return (0xF0 | 0x0F) & 0x3C; }"), 0x3Cu);
  EXPECT_EQ(run("int main() { return 0xFF ^ 0x0F; }"), 0xF0u);
  EXPECT_EQ(run("int main() { return ~0; }"), 0xFFFFFFFFu);
  EXPECT_EQ(run("int main() { return 1 << 10; }"), 1024u);
  EXPECT_EQ(run("int main() { return 0 - 16 >> 2; }"), 0xFFFFFFFCu);  // sra
  EXPECT_EQ(run("int main() { int n = 3; return 1 << n; }"), 8u);  // sllv
}

TEST(MiniC, Comparisons) {
  EXPECT_EQ(run("int main() { return 3 < 4; }"), 1u);
  EXPECT_EQ(run("int main() { return 4 < 3; }"), 0u);
  EXPECT_EQ(run("int main() { return 3 <= 3; }"), 1u);
  EXPECT_EQ(run("int main() { return 4 > 3; }"), 1u);
  EXPECT_EQ(run("int main() { return 3 >= 4; }"), 0u);
  EXPECT_EQ(run("int main() { return 5 == 5; }"), 1u);
  EXPECT_EQ(run("int main() { return 5 != 5; }"), 0u);
  EXPECT_EQ(run("int main() { return 0 - 1 < 1; }"), 1u);  // signed compare
}

TEST(MiniC, LogicalOperators) {
  EXPECT_EQ(run("int main() { return 2 && 3; }"), 1u);
  EXPECT_EQ(run("int main() { return 0 && 3; }"), 0u);
  EXPECT_EQ(run("int main() { return 0 || 7; }"), 1u);
  EXPECT_EQ(run("int main() { return 0 || 0; }"), 0u);
  EXPECT_EQ(run("int main() { return !5; }"), 0u);
  EXPECT_EQ(run("int main() { return !0; }"), 1u);
}

TEST(MiniC, ShortCircuitSkipsSideEffects) {
  EXPECT_EQ(run(R"(
    int hits = 0;
    int bump() { hits = hits + 1; return 1; }
    int main() {
      0 && bump();
      1 || bump();
      return hits;
    }
  )"),
            0u);
}

TEST(MiniC, DivisionAndRemainder) {
  EXPECT_EQ(run("int main() { return 100 / 7; }"), 14u);
  EXPECT_EQ(run("int main() { return 100 % 7; }"), 2u);
  EXPECT_EQ(run("int main() { return (0 - 100) / 7; }"), 0xFFFFFFF2u);  // -14
  EXPECT_EQ(run("int main() { return (0 - 100) % 7; }"), 0xFFFFFFFEu);  // -2
  EXPECT_EQ(run("int main() { return 100 / (0 - 7); }"), 0xFFFFFFF2u);
  EXPECT_EQ(run("int main() { return 1000000 / 1000; }"), 1000u);
  EXPECT_EQ(run("int main() { return 7 / 10; }"), 0u);
}

TEST(MiniC, LocalsAndAssignment) {
  EXPECT_EQ(run(R"(
    int main() {
      int a = 5;
      int b;
      b = a * 3;
      a = a + b;
      return a;
    }
  )"),
            20u);
}

TEST(MiniC, AssignmentIsAnExpression) {
  EXPECT_EQ(run("int main() { int a; int b; a = b = 7; return a + b; }"), 14u);
}

TEST(MiniC, IfElse) {
  const char* src = R"(
    int classify(int x) {
      if (x < 0) { return 0 - 1; }
      else if (x == 0) { return 0; }
      else { return 1; }
    }
    int main() { return classify(0-5)*100 + classify(0)*10 + classify(9); }
  )";
  EXPECT_EQ(run(src), static_cast<std::uint32_t>(-100 + 0 + 1));
}

TEST(MiniC, WhileLoop) {
  EXPECT_EQ(run(R"(
    int main() {
      int sum = 0;
      int i = 1;
      while (i <= 10) { sum = sum + i; i = i + 1; }
      return sum;
    }
  )"),
            55u);
}

TEST(MiniC, ForLoopWithBreakContinue) {
  EXPECT_EQ(run(R"(
    int main() {
      int sum = 0;
      for (int i = 0; i < 100; i = i + 1) {
        if (i % 2 == 1) { continue; }
        if (i >= 20) { break; }
        sum = sum + i;
      }
      return sum;  // 0+2+...+18 = 90
    }
  )"),
            90u);
}

TEST(MiniC, NestedLoops) {
  EXPECT_EQ(run(R"(
    int main() {
      int total = 0;
      for (int i = 0; i < 5; i = i + 1) {
        for (int j = 0; j < 5; j = j + 1) {
          total = total + i * j;
        }
      }
      return total;  // (0+1+2+3+4)^2 = 100
    }
  )"),
            100u);
}

TEST(MiniC, GlobalsAndArrays) {
  EXPECT_EQ(run(R"(
    int counter = 3;
    int table[8] = {1, 2, 4, 8};
    int big[100];
    int main() {
      big[99] = 7;
      counter = counter + big[99];
      return table[2] + table[3] + counter;  // 4 + 8 + 10
    }
  )"),
            22u);
}

TEST(MiniC, ArrayIndexExpressions) {
  EXPECT_EQ(run(R"(
    int a[16];
    int main() {
      for (int i = 0; i < 16; i = i + 1) { a[i] = i * i; }
      int k = 3;
      return a[k + 1] + a[2 * k];  // 16 + 36
    }
  )"),
            52u);
}

TEST(MiniC, FunctionCallsAndRecursion) {
  EXPECT_EQ(run(R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(12); }
  )"),
            144u);
}

TEST(MiniC, FourArguments) {
  EXPECT_EQ(run(R"(
    int mix(int a, int b, int c, int d) { return a*1000 + b*100 + c*10 + d; }
    int main() { return mix(1, 2, 3, 4); }
  )"),
            1234u);
}

TEST(MiniC, CallsPreserveCallerTemporaries) {
  // The multiply's left operand must survive the call on the right.
  EXPECT_EQ(run(R"(
    int id(int x) { return x; }
    int main() { return (3 + 4) * id(5) + id(2) * (1 + id(1)); }
  )"),
            39u);
}

TEST(MiniC, ScopingAndShadowing) {
  EXPECT_EQ(run(R"(
    int main() {
      int x = 1;
      {
        int x = 2;
        { int x = 3; }
        x = x + 10;
      }
      return x;
    }
  )"),
            1u);
}

TEST(MiniC, ManyLocalsOverflowToStack) {
  EXPECT_EQ(run(R"(
    int main() {
      int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
      int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
      int k = 11; int l = 12;
      return a+b+c+d+e+f+g+h+i+j+k+l;
    }
  )"),
            78u);
}

TEST(MiniC, DeepExpressionSpills) {
  // Parenthesized right-leaning tree forces a deep value stack.
  EXPECT_EQ(run(R"(
    int main() {
      return 1+(2+(3+(4+(5+(6+(7+(8+(9+(10+(11+12))))))))));
    }
  )"),
            78u);
}

TEST(MiniC, MulByPowerOfTwoAndConstants) {
  EXPECT_EQ(run("int main() { int x = 5; return x * 8 + x * 3; }"), 55u);
}

TEST(MiniC, DspKernelChecksum) {
  // A realistic kernel: the compiled inner loop should both run correctly
  // and (see the integration tests) feed the extended-instruction selector.
  // Reference computed in C++ with identical semantics.
  std::int32_t buf[64];
  for (int i = 0; i < 64; ++i) buf[i] = (i * 37 + 11) & 0xFF;
  std::int32_t state = 0;
  std::uint32_t acc = 0;
  for (int i = 0; i < 64; ++i) {
    const std::int32_t x = buf[i];
    const std::int32_t y = (((x << 2) + state) >> 1) + 33;
    state = (y >> 2) & 0xFFF;
    acc += static_cast<std::uint32_t>(y ^ (x << 1));
  }
  EXPECT_EQ(run(R"(
    int buf[64];
    int main() {
      int state = 0;
      int acc = 0;
      for (int i = 0; i < 64; i = i + 1) { buf[i] = (i * 37 + 11) & 0xFF; }
      for (int i = 0; i < 64; i = i + 1) {
        int x = buf[i];
        int y = ((x << 2) + state >> 1) + 33;
        state = (y >> 2) & 0xFFF;
        acc = acc + (y ^ (x << 1));
      }
      return acc & 0xFFFFFF;
    }
  )"),
            acc & 0xFFFFFF);
}

// --- error cases ---

TEST(MiniCErrors, SemanticErrors) {
  EXPECT_THROW(compile("int main() { return x; }"), CompileError);
  EXPECT_THROW(compile("int main() { return f(1); }"), CompileError);
  EXPECT_THROW(compile("int f(int a) { return a; } int main() { return f(); }"),
               CompileError);
  EXPECT_THROW(compile("int a[4]; int main() { return a; }"), CompileError);
  EXPECT_THROW(compile("int x; int main() { return x[0]; }"), CompileError);
  EXPECT_THROW(compile("int a[4]; int main() { a = 3; return 0; }"),
               CompileError);
  EXPECT_THROW(compile("int main() { break; }"), CompileError);
  EXPECT_THROW(compile("int main() { int x; int x; return 0; }"), CompileError);
  EXPECT_THROW(compile("int f() { return 0; }"), CompileError);  // no main
  EXPECT_THROW(compile("int main() { 3 = 4; return 0; }"), CompileError);
}

TEST(MiniCErrors, SyntaxErrors) {
  EXPECT_THROW(compile("int main() { return 1 + ; }"), CompileError);
  EXPECT_THROW(compile("int main() { if 1 { } }"), CompileError);
  EXPECT_THROW(compile("int main() {"), CompileError);
  EXPECT_THROW(compile("main() { return 0; }"), CompileError);
  EXPECT_THROW(compile("int main(int a, int b, int c, int d, int e) {}"),
               CompileError);
}

}  // namespace
}  // namespace t1000::minic
