#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/executor.hpp"
#include "cfg/cfg.hpp"
#include "cfg/liveness.hpp"
#include "extinst/extract.hpp"
#include "sim/profiler.hpp"

namespace t1000 {
namespace {

TEST(Workloads, SuiteHasAllEightBenchmarks) {
  const auto& suite = all_workloads();
  ASSERT_EQ(suite.size(), 8u);
  const std::set<std::string> expected = {
      "unepic",   "epic",     "gsm_dec",   "gsm_enc",
      "g721_dec", "g721_enc", "mpeg2_dec", "mpeg2_enc"};
  std::set<std::string> actual;
  for (const Workload& w : suite) actual.insert(w.name);
  EXPECT_EQ(actual, expected);
}

TEST(Workloads, FindByName) {
  EXPECT_NE(find_workload("gsm_dec"), nullptr);
  EXPECT_EQ(find_workload("gsm_dec")->name, "gsm_dec");
  EXPECT_EQ(find_workload("nope"), nullptr);
}

TEST(Workloads, DescriptionsExplainTheAnalogy) {
  for (const Workload& w : all_workloads()) {
    EXPECT_GT(w.description.size(), 30u) << w.name;
  }
}

class WorkloadSuite : public ::testing::TestWithParam<int> {
 protected:
  const Workload& workload() const {
    return all_workloads()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(WorkloadSuite, AssemblesAndHalts) {
  const Workload& w = workload();
  const Program p = workload_program(w);
  EXPECT_GT(p.size(), 30) << w.name;
  Executor e(p);
  e.run(w.max_steps);
  EXPECT_TRUE(e.halted()) << w.name << " did not halt";
  EXPECT_GT(e.steps_executed(), 50000u) << w.name << " too small to measure";
  EXPECT_LT(e.steps_executed(), 4000000u) << w.name << " too large for benches";
}

TEST_P(WorkloadSuite, ChecksumIsNonTrivialAndDeterministic) {
  const Workload& w = workload();
  const Program p = workload_program(w);
  Executor a(p);
  a.run(w.max_steps);
  EXPECT_NE(a.reg(kRegV0), 0u) << w.name;
  Executor b(p);
  b.run(w.max_steps);
  EXPECT_EQ(a.reg(kRegV0), b.reg(kRegV0)) << w.name;
}

TEST_P(WorkloadSuite, HasHotLoopsAndNarrowValues) {
  const Workload& w = workload();
  const Program p = workload_program(w);
  const Cfg cfg = Cfg::build(p);
  EXPECT_GE(cfg.loops().size(), 3u) << w.name;

  // The defining property of MediaBench for this paper: a large share of
  // dynamic ALU work on narrow (<= 18-bit) operands.
  const Profile prof = profile_program(p, w.max_steps);
  std::uint64_t narrow_alu = 0;
  for (int i = 0; i < p.size(); ++i) {
    const InstProfile& ip = prof.at(i);
    if (ip.count == 0) continue;
    if (is_ext_candidate(p.text[static_cast<std::size_t>(i)].op) &&
        ip.max_src_width <= 18 && ip.max_result_width <= 18) {
      narrow_alu += ip.count;
    }
  }
  EXPECT_GT(static_cast<double>(narrow_alu) /
                static_cast<double>(prof.total_dynamic),
            0.15)
      << w.name << " lacks narrow ALU work";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadSuite, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return all_workloads()[static_cast<std::size_t>(
                                                      info.param)]
                               .name;
                         });

}  // namespace
}  // namespace t1000

namespace t1000 {
namespace {

class ExtendedSuite : public ::testing::TestWithParam<int> {
 protected:
  const Workload& workload() const {
    return extended_workloads()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(ExtendedSuite, AssemblesHaltsAndIsDeterministic) {
  const Workload& w = workload();
  const Program p = workload_program(w);
  Executor a(p);
  a.run(w.max_steps);
  ASSERT_TRUE(a.halted()) << w.name;
  EXPECT_NE(a.reg(kRegV0), 0u);
  Executor b(p);
  b.run(w.max_steps);
  EXPECT_EQ(a.reg(kRegV0), b.reg(kRegV0));
  EXPECT_GT(a.steps_executed(), 50000u);
}

TEST_P(ExtendedSuite, FindableByName) {
  EXPECT_EQ(find_workload(workload().name), &workload());
}

INSTANTIATE_TEST_SUITE_P(Extra, ExtendedSuite, ::testing::Range(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return extended_workloads()[static_cast<std::size_t>(
                                                           info.param)]
                               .name;
                         });

TEST(ExtendedSuiteGlobal, PegwitIsPfuHostile) {
  // The negative control: wide 32-bit values defeat the candidate filter.
  const Workload& w = *find_workload("pegwit");
  const Program p = workload_program(w);
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  const Profile prof = profile_program(p, w.max_steps);
  const auto sites = extract_sites(p, cfg, lv, prof, {});
  // At most trivial cold-code sites survive; nothing hot.
  std::uint64_t hot_execs = 0;
  for (const auto& s : sites) hot_execs += s.exec_count;
  EXPECT_LT(hot_execs, prof.total_dynamic / 100);
}

TEST(CompiledSuite, CiKernelIsBundledAndFindable) {
  const std::vector<Workload>& suite = compiled_workloads();
  ASSERT_EQ(suite.size(), 1u);
  const Workload& w = suite[0];
  EXPECT_EQ(w.name, "cc_cikernel");
  EXPECT_FALSE(w.description.empty());
  EXPECT_EQ(find_workload("cc_cikernel"), &w);
}

TEST(CompiledSuite, CiKernelAssemblesHaltsAndIsDeterministic) {
  const Workload& w = *find_workload("cc_cikernel");
  const Program p = workload_program(w);
  EXPECT_GT(p.size(), 30);
  Executor a(p);
  a.run(w.max_steps);
  EXPECT_TRUE(a.halted()) << "cc_cikernel did not halt";
  EXPECT_GT(a.steps_executed(), 50000u);
  Executor b(p);
  b.run(w.max_steps);
  EXPECT_TRUE(b.halted());
  EXPECT_EQ(a.reg(kRegV0), b.reg(kRegV0));
  EXPECT_EQ(a.steps_executed(), b.steps_executed());
}

}  // namespace
}  // namespace t1000
