// Journal tests: event-line schema, seq/ts stamping, ring bounds, poll
// filtering/blocking, span scopes, thread-local context scoping, and the
// on-disk JSONL tier (crash-safe complete lines, bounded rotation to
// <path>.1).
#include "obs/journal.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/json.hpp"

namespace t1000::obs {
namespace {

using std::chrono::milliseconds;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

// A temp path under the build dir; removed on scope exit.
struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
  }
  ~TempPath() {
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
  }
};

TEST(JournalEventLine, DeterministicMemberOrderAndHexIds) {
  JournalEvent ev;
  ev.seq = 7;
  ev.ts_ms = 1.5;
  ev.trace_id = 0xabc;
  ev.span_id = 0x1;
  ev.parent_id = 0;
  ev.kind = 'B';
  ev.name = "run";
  EXPECT_EQ(journal_event_line(ev),
            "{\"seq\":7,\"ts_ms\":1.5,\"trace\":\"0000000000000abc\","
            "\"span\":\"0000000000000001\",\"parent\":\"0000000000000000\","
            "\"kind\":\"B\",\"name\":\"run\"}");

  // attrs render only when present.
  Json attrs = Json::object();
  attrs["hit"] = Json(true);
  ev.attrs = attrs;
  ev.kind = 'i';
  const std::string line = journal_event_line(ev);
  EXPECT_NE(line.find("\"attrs\":{\"hit\":true}"), std::string::npos);
}

TEST(Journal, AppendStampsMonotoneSeqAndTimestamps) {
  Journal journal;
  for (int i = 0; i < 3; ++i) {
    JournalEvent ev;
    ev.trace_id = 1;
    ev.name = "e" + std::to_string(i);
    journal.append(std::move(ev));
  }
  const std::vector<JournalEvent> events =
      journal.poll(0, 0, milliseconds(0));
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
    EXPECT_EQ(events[i].name, "e" + std::to_string(i));
    if (i > 0) {
      EXPECT_GE(events[i].ts_ms, events[i - 1].ts_ms);
    }
  }
  EXPECT_EQ(journal.events_appended(), 3u);
  EXPECT_EQ(journal.last_seq(), 3u);
}

TEST(Journal, PollFiltersBySeqAndTrace) {
  Journal journal;
  for (const std::uint64_t trace : {1u, 2u, 1u, 2u}) {
    JournalEvent ev;
    ev.trace_id = trace;
    journal.append(std::move(ev));
  }
  EXPECT_EQ(journal.poll(0, 1, milliseconds(0)).size(), 2u);
  EXPECT_EQ(journal.poll(0, 2, milliseconds(0)).size(), 2u);
  EXPECT_EQ(journal.poll(0, 0, milliseconds(0)).size(), 4u);
  EXPECT_EQ(journal.poll(3, 0, milliseconds(0)).size(), 1u);
  EXPECT_EQ(journal.poll(3, 1, milliseconds(0)).size(), 0u);
}

TEST(Journal, PollBlocksUntilAMatchingEventArrives) {
  Journal journal;
  std::thread producer([&journal] {
    std::this_thread::sleep_for(milliseconds(50));
    JournalEvent ev;
    ev.trace_id = 9;
    ev.name = "late";
    journal.append(std::move(ev));
  });
  // Blocks (not a busy return): an event for another trace must not wake
  // the result, only the matching one does.
  const std::vector<JournalEvent> events =
      journal.poll(0, 9, milliseconds(5000));
  producer.join();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "late");
}

TEST(Journal, RingDropsOldestBeyondCapacity) {
  Journal::Options options;
  options.ring_capacity = 4;
  Journal journal(options);
  for (int i = 0; i < 10; ++i) {
    JournalEvent ev;
    ev.trace_id = 1;
    journal.append(std::move(ev));
  }
  const std::vector<JournalEvent> events =
      journal.poll(0, 0, milliseconds(0));
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 7u);  // 1..6 dropped
  EXPECT_EQ(events.back().seq, 10u);
  EXPECT_EQ(journal.ring_dropped(), 6u);
  EXPECT_EQ(journal.events_appended(), 10u);
}

TEST(Journal, SpanHelpersEmitBeginEndAndInstants) {
  Journal journal;
  const TraceContext root{journal.new_id(), 0};
  const std::uint64_t span = journal.begin_span(root, "run");
  ASSERT_NE(span, 0u);
  journal.instant({root.trace_id, span}, "cache.lookup");
  journal.end_span(root, span, "run");

  const std::vector<JournalEvent> events =
      journal.poll(0, root.trace_id, milliseconds(0));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, 'B');
  EXPECT_EQ(events[0].span_id, span);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[1].kind, 'i');
  EXPECT_EQ(events[1].span_id, 0u);
  EXPECT_EQ(events[1].parent_id, span);
  EXPECT_EQ(events[2].kind, 'E');
  EXPECT_EQ(events[2].span_id, span);

  // An inactive context is a no-op, not an error.
  EXPECT_EQ(journal.begin_span(TraceContext{}, "ignored"), 0u);
  journal.instant(TraceContext{}, "ignored");
  EXPECT_EQ(journal.events_appended(), 3u);
}

TEST(Journal, SpanScopeEmitsPairAndCarriesEndAttrs) {
  Journal journal;
  const TraceContext root{journal.new_id(), 0};
  {
    Journal::SpanScope scope(&journal, root, "job");
    EXPECT_EQ(scope.context().trace_id, root.trace_id);
    EXPECT_NE(scope.context().span_id, 0u);
    Json attrs = Json::object();
    attrs["state"] = Json("done");
    scope.set_end_attrs(std::move(attrs));
  }
  const std::vector<JournalEvent> events =
      journal.poll(0, root.trace_id, milliseconds(0));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, 'B');
  EXPECT_EQ(events[1].kind, 'E');
  EXPECT_EQ(events[1].attrs.at("state").as_string(), "done");

  // A null journal or inactive context produces a no-op scope.
  { Journal::SpanScope inactive(nullptr, root, "x"); }
  { Journal::SpanScope inactive(&journal, TraceContext{}, "x"); }
  EXPECT_EQ(journal.events_appended(), 2u);
}

TEST(Journal, ScopedTraceContextInstallsAndRestores) {
  EXPECT_FALSE(current_trace_context().active());
  {
    ScopedTraceContext outer(TraceContext{5, 1});
    EXPECT_EQ(current_trace_context().trace_id, 5u);
    EXPECT_EQ(current_trace_context().span_id, 1u);
    {
      ScopedTraceContext inner(TraceContext{5, 2});
      EXPECT_EQ(current_trace_context().span_id, 2u);
    }
    EXPECT_EQ(current_trace_context().span_id, 1u);
  }
  EXPECT_FALSE(current_trace_context().active());
}

TEST(Journal, DiskTierWritesCompleteJsonLines) {
  TempPath tmp("journal_lines.jsonl");
  Journal::Options options;
  options.path = tmp.path;
  {
    Journal journal(options);
    const TraceContext root{journal.new_id(), 0};
    const std::uint64_t span = journal.begin_span(root, "run");
    journal.end_span(root, span, "run");
    EXPECT_EQ(journal.disk_errors(), 0u);
  }
  const std::vector<std::string> lines = read_lines(tmp.path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    const Json ev = Json::parse(line);  // throws on a torn/partial line
    EXPECT_GT(ev.at("seq").as_uint(), 0u);
    EXPECT_EQ(ev.at("name").as_string(), "run");
  }
}

TEST(Journal, DiskTierRotatesAtMaxBytesAndStaysBounded) {
  TempPath tmp("journal_rotate.jsonl");
  Journal::Options options;
  options.path = tmp.path;
  options.max_bytes = 2048;
  Journal journal(options);
  const TraceContext root{journal.new_id(), 0};
  for (int i = 0; i < 100; ++i) journal.instant(root, "tick");
  EXPECT_GT(journal.disk_rotations(), 0u);
  EXPECT_EQ(journal.disk_errors(), 0u);

  // Both tiers stay within the bound and hold only complete lines.
  for (const std::string& path : {tmp.path, tmp.path + ".1"}) {
    const std::vector<std::string> lines = read_lines(path);
    ASSERT_FALSE(lines.empty()) << path;
    std::uint64_t bytes = 0;
    for (const std::string& line : lines) {
      EXPECT_NO_THROW(Json::parse(line)) << path;
      bytes += line.size() + 1;
    }
    EXPECT_LE(bytes, options.max_bytes) << path;
  }

  // Rotation replaces the previous .1 — seqs in the active file are newer.
  const std::vector<std::string> active = read_lines(tmp.path);
  const std::vector<std::string> rotated = read_lines(tmp.path + ".1");
  EXPECT_GT(Json::parse(active.front()).at("seq").as_uint(),
            Json::parse(rotated.back()).at("seq").as_uint());
}

TEST(Journal, AppendFromManyThreadsKeepsLinesIntact) {
  TempPath tmp("journal_mt.jsonl");
  Journal::Options options;
  options.path = tmp.path;
  Journal journal(options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      const TraceContext ctx{static_cast<std::uint64_t>(t + 1), 0};
      for (int i = 0; i < kPerThread; ++i) {
        journal.instant(ctx, "thread" + std::to_string(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(journal.events_appended(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const std::vector<std::string> lines = read_lines(tmp.path);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::uint64_t prev_seq = 0;
  for (const std::string& line : lines) {
    const Json ev = Json::parse(line);  // no interleaved/torn lines
    EXPECT_GT(ev.at("seq").as_uint(), prev_seq);
    prev_seq = ev.at("seq").as_uint();
  }
}

}  // namespace
}  // namespace t1000::obs
