// Prometheus text-exposition tests: name sanitization and label escaping,
// the `family|key=value` split, cumulative-bucket monotonicity against the
// registry's per-bucket tallies, digit-for-digit value parity with the
// JSON dump above INT64_MAX, span-summary seconds, appended gauges, a
// structural lint over a whole document, and a concurrent hammer on the
// per-route histograms while the renderer runs (the TSan job executes
// this binary).
#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace t1000::obs {
namespace {

constexpr std::uint64_t kMax = ~0ull;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    lines.push_back(text.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return lines;
}

TEST(Prometheus, SanitizeNameMapsInvalidBytesToUnderscore) {
  EXPECT_EQ(prometheus_sanitize_name("exp.phase_ms"), "exp_phase_ms");
  EXPECT_EQ(prometheus_sanitize_name("grid.runs"), "grid_runs");
  EXPECT_EQ(prometheus_sanitize_name("a:b_c9"), "a:b_c9");
  // A leading digit is invalid even though digits are fine later.
  EXPECT_EQ(prometheus_sanitize_name("9lives"), "_lives");
  EXPECT_EQ(prometheus_sanitize_name(""), "_");
  EXPECT_EQ(prometheus_sanitize_name("sp ace/slash"), "sp_ace_slash");
}

TEST(Prometheus, LabelValueEscaping) {
  EXPECT_EQ(prometheus_escape_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_escape_label_value("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(prometheus_escape_label_value("GET /v1/jobs/<id>"),
            "GET /v1/jobs/<id>");
}

TEST(Prometheus, SplitNameParsesFamilyAndLabels) {
  std::string family;
  std::string labels;
  prometheus_split_name("grid.runs", &family, &labels);
  EXPECT_EQ(family, "grid_runs");
  EXPECT_EQ(labels, "");

  prometheus_split_name("serve.route_ms|route=GET /v1/jobs/<id>", &family,
                        &labels);
  EXPECT_EQ(family, "serve_route_ms");
  EXPECT_EQ(labels, "{route=\"GET /v1/jobs/<id>\"}");

  prometheus_split_name("exp.phase_ms|phase=decode|shard=3", &family,
                        &labels);
  EXPECT_EQ(family, "exp_phase_ms");
  EXPECT_EQ(labels, "{phase=\"decode\",shard=\"3\"}");

  // A segment without '=' is a key with an empty value, and the value is
  // escaped, not sanitized.
  prometheus_split_name("f|flag|path=a\\b", &family, &labels);
  EXPECT_EQ(family, "f");
  EXPECT_EQ(labels, "{flag=\"\",path=\"a\\\\b\"}");
}

TEST(Prometheus, CounterRendersWithTotalSuffixAndTypeLine) {
  MetricsRegistry registry;
  registry.counter("serve.jobs_completed")->add(3);
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE serve_jobs_completed_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_jobs_completed_total 3\n"), std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndMonotone) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat|route=GET /x", {10, 20, 50});
  for (const std::uint64_t v : {1u, 10u, 11u, 20u, 21u, 49u, 1000u}) {
    h->observe(v);
  }
  const std::string text = render_prometheus(registry);
  // The registry stores per-bucket tallies {2,2,2}(+1 overflow); the
  // exposition must accumulate them.
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{route=\"GET /x\",le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{route=\"GET /x\",le=\"20\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{route=\"GET /x\",le=\"50\"} 6\n"),
            std::string::npos);
  // le="+Inf" is the observation count by definition.
  EXPECT_NE(text.find("lat_bucket{route=\"GET /x\",le=\"+Inf\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_sum{route=\"GET /x\"} 1112\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_count{route=\"GET /x\"} 7\n"), std::string::npos);

  // Structural re-check: successive _bucket samples never decrease.
  std::uint64_t prev = 0;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("lat_bucket", 0) != 0) continue;
    const std::uint64_t value =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, prev) << line;
    prev = value;
  }
}

TEST(Prometheus, HugeCounterMatchesJsonDigitForDigit) {
  MetricsRegistry registry;
  // Above INT64_MAX the JSON dump switches to a decimal string; the
  // exposition must reuse those exact digits.
  registry.counter("huge")->add(kMax - 1);
  const Json doc = registry.to_json();
  const Json& value = doc.at("huge").at("value");
  ASSERT_TRUE(value.is_string());
  EXPECT_EQ(value.as_string(), "18446744073709551614");
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("huge_total " + value.as_string() + "\n"),
            std::string::npos);
}

TEST(Prometheus, HugeHistogramTalliesSaturateCumulatively) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("big", {1, 2});
  // Pegging two buckets near the ceiling must not wrap the cumulative
  // series — it saturates, keeping the rendered samples monotone.
  for (int i = 0; i < 3; ++i) h->observe(1);
  for (int i = 0; i < 3; ++i) h->observe(2);
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("big_bucket{le=\"1\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("big_bucket{le=\"2\"} 6\n"), std::string::npos);
  EXPECT_NE(text.find("big_bucket{le=\"+Inf\"} 6\n"), std::string::npos);
}

TEST(Prometheus, SpanRendersAsSummaryInSeconds) {
  MetricsRegistry registry;
  Span* span = registry.span("grid.wall");
  span->record_ns(1500000000);  // 1.5 s
  span->record_ns(500000000);   // 0.5 s
  const std::string text = render_prometheus(registry);
  EXPECT_NE(text.find("# TYPE grid_wall summary\n"), std::string::npos);
  EXPECT_NE(text.find("grid_wall_sum 2\n"), std::string::npos);
  EXPECT_NE(text.find("grid_wall_count 2\n"), std::string::npos);
}

TEST(Prometheus, GaugesAppendAfterRegistryInstruments) {
  MetricsRegistry registry;
  registry.counter("a")->add(1);
  const std::string text = render_prometheus(
      registry, {{"serve.cache_disk_usage_bytes", 4096.0},
                 {"serve.cache|counter=misses", 2.0}});
  EXPECT_NE(text.find("# TYPE serve_cache_disk_usage_bytes gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_cache_disk_usage_bytes 4096\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_cache{counter=\"misses\"} 2\n"),
            std::string::npos);
  // Gauges come last: the counter samples precede them.
  EXPECT_LT(text.find("a_total 1\n"), text.find("serve_cache_disk_usage"));
}

// A minimal lint over the whole document: every line is either a # TYPE
// comment or `name[{labels}] value`, names start in the Prometheus
// grammar, and every sample's family was introduced by a TYPE line.
TEST(Prometheus, DocumentIsStructurallyValid) {
  MetricsRegistry registry;
  registry.counter("grid.runs")->add(7);
  registry.histogram("exp.phase_ms|phase=decode", {1, 10})->observe(3);
  registry.histogram("exp.phase_ms|phase=replay", {1, 10})->observe(12);
  registry.span("grid.wall")->record_ns(1000);
  const std::string text =
      render_prometheus(registry, {{"serve.journal_events", 5.0}});
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  std::vector<std::string> typed;
  for (const std::string& line : lines_of(text)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      typed.push_back(rest.substr(0, space));
      const std::string type = rest.substr(space + 1);
      EXPECT_TRUE(type == "counter" || type == "histogram" ||
                  type == "summary" || type == "gauge")
          << line;
      continue;
    }
    // Sample line: `name[{...}] value` with a parseable number.
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_' || name[0] == ':')
        << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
    // The sample's family must match one of the TYPE lines seen so far.
    bool matched = false;
    for (const std::string& family : typed) {
      if (name.rfind(family, 0) == 0) matched = true;
    }
    EXPECT_TRUE(matched) << "untyped sample: " << line;
  }
}

// The serve layer's per-route histograms are created and hammered from
// the HTTP handler pool while /metrics renders concurrently; this is the
// same access pattern under the race detector.
TEST(Prometheus, ConcurrentRouteHistogramHammer) {
  MetricsRegistry registry;
  const std::vector<std::string> routes = {
      "serve.route_ms|route=GET /v1/jobs",
      "serve.route_ms|route=GET /v1/jobs/<id>",
      "serve.route_ms|route=POST /v1/jobs",
      "serve.route_ms|route=GET /metrics",
  };
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(routes.size() + 1);
  for (const std::string& route : routes) {
    threads.emplace_back([&registry, route] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.histogram(route, {1, 5, 10, 100})
            ->observe(static_cast<std::uint64_t>(i % 128));
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) {
      const std::string text = render_prometheus(registry);
      EXPECT_FALSE(text.empty());
    }
  });
  for (std::thread& t : threads) t.join();

  const std::string text = render_prometheus(registry);
  for (const std::string& route : routes) {
    std::string family;
    std::string labels;
    prometheus_split_name(route, &family, &labels);
    const std::string want =
        family + "_count" + labels + " " + std::to_string(kPerThread) + "\n";
    EXPECT_NE(text.find(want), std::string::npos) << want;
  }
}

}  // namespace
}  // namespace t1000::obs
