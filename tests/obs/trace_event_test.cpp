// TraceEventLog: Chrome trace-event emission.
//
// Three layers of proof. Unit tests pin the log's rendering rules
// (metadata first, stable ts sort, instant scope marker). A schema checker
// validates a real pipeline trace end to end: parseable JSON, monotone
// timestamps per track, and balanced B/E nesting on every (pid, tid) row —
// the structural guarantees a Perfetto/chrome://tracing viewer relies on.
// Finally, a golden fixture pins the complete trace of one small workload
// byte for byte; regenerate deliberately with
//
//   T1000_REGEN_GOLDEN=1 ./obs_test --gtest_filter='TraceGolden.*'
//
// and review the diff.
#include "obs/trace_event.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "asmkit/assembler.hpp"
#include "sim/profiler.hpp"
#include "uarch/timing.hpp"

namespace t1000::obs {
namespace {

TEST(TraceEvent, RendersMetadataFirstThenEventsStablySortedByTs) {
  TraceEventLog log;
  // Emitted out of ts order across tracks, and with back-to-back slices
  // sharing a timestamp on one track: slice "a" ends at 10 and slice "b"
  // begins at 10, in that emission order.
  log.begin("b", 10, 1, 0);  // recorded first, belongs later
  ASSERT_EQ(log.size(), 1u);
  TraceEventLog ordered;
  ordered.begin("a", 5, 1, 0);
  ordered.end(10, 1, 0);
  ordered.begin("b", 10, 1, 0);
  ordered.end(12, 1, 0);
  ordered.name_process(1, "pipeline");  // registered last, rendered first
  ordered.name_thread(1, 0, "slot 0");

  const Json doc = ordered.to_json();
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events.at(0).at("ph").as_string(), "M");
  EXPECT_EQ(events.at(0).at("name").as_string(), "process_name");
  EXPECT_EQ(events.at(1).at("ph").as_string(), "M");
  // Non-metadata events come out ordered by ts...
  EXPECT_EQ(events.at(2).at("name").as_string(), "a");
  EXPECT_EQ(events.at(2).at("ts").as_uint(), 5u);
  // ...and the stable sort keeps emission order for the shared timestamp:
  // "a"'s E at ts=10 stays before "b"'s B at ts=10, preserving nesting.
  EXPECT_EQ(events.at(3).at("ph").as_string(), "E");
  EXPECT_EQ(events.at(3).at("ts").as_uint(), 10u);
  EXPECT_EQ(events.at(4).at("ph").as_string(), "B");
  EXPECT_EQ(events.at(4).at("name").as_string(), "b");
  EXPECT_EQ(events.at(5).at("ts").as_uint(), 12u);
}

TEST(TraceEvent, InstantEventsCarryGlobalScope) {
  TraceEventLog log;
  Json args = Json::object();
  args["cycles"] = Json(42);
  log.instant("hot[3..7]", 3, 3, 0, std::move(args));
  const Json doc = log.to_json();
  const Json& ev = doc.at("traceEvents").at(0);
  EXPECT_EQ(ev.at("ph").as_string(), "i");
  EXPECT_EQ(ev.at("s").as_string(), "g");
  EXPECT_EQ(ev.at("args").at("cycles").as_int(), 42);
}

// ---------------------------------------------------------------------------
// Schema validation of a real pipeline trace.

// Asserts the structural trace-event contract on a serialized log:
// metadata strictly before slice events, and per (pid, tid) track
// non-decreasing timestamps with balanced, never-negative B/E nesting.
void check_trace_schema(const Json& doc) {
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);

  bool seen_slice = false;
  std::map<std::pair<int, int>, std::uint64_t> last_ts;
  std::map<std::pair<int, int>, long> depth;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& ev = events.at(i);
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") {
      EXPECT_FALSE(seen_slice) << "metadata after slice events (index " << i
                               << ")";
      continue;
    }
    seen_slice = true;
    const std::pair<int, int> track{static_cast<int>(ev.at("pid").as_int()),
                                    static_cast<int>(ev.at("tid").as_int())};
    const std::uint64_t ts = ev.at("ts").as_uint();
    const auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "ts went backwards on track (pid "
                                << track.first << ", tid " << track.second
                                << ") at index " << i;
    }
    last_ts[track] = ts;
    if (ph == "B") {
      EXPECT_FALSE(ev.at("name").as_string().empty());
      ++depth[track];
    } else if (ph == "E") {
      --depth[track];
      EXPECT_GE(depth[track], 0) << "unbalanced E on track (pid "
                                 << track.first << ", tid " << track.second
                                 << ") at index " << i;
    } else if (ph == "i") {
      EXPECT_EQ(ev.at("s").as_string(), "g");
    } else {
      ADD_FAILURE() << "unexpected phase '" << ph << "' at index " << i;
    }
  }
  for (const auto& [track, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed slices on track (pid " << track.first
                    << ", tid " << track.second << ")";
  }
}

// The golden/schema workload: a short EXT loop that exercises every event
// source — instruction lifecycles, PFU reconfigurations (two
// configurations thrashing one unit), and a profiler hot region.
struct TracedProgram {
  Program program;
  ExtInstTable table;
  MachineConfig machine;
};

TracedProgram traced_program(int iterations) {
  TracedProgram t;
  t.table.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 1},
                                {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  t.table.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 2},
                                {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  t.program = assemble(
      "      li $t0, 3\n"
      "      li $t1, 5\n"
      "      li $s0, " + std::to_string(iterations) + "\n"
      "loop: ext $t2, $t0, $t1, 0\n"
      "      ext $t3, $t0, $t1, 1\n"
      "      addu $v0, $t2, $t3\n"
      "      addiu $s0, $s0, -1\n"
      "      bgtz $s0, loop\n"
      "      halt\n");
  t.machine.pfu = {.count = 1, .reconfig_latency = 10};
  return t;
}

Json record_full_trace(const TracedProgram& t) {
  SimObservation obs;
  obs.want_trace = true;
  simulate({.program = &t.program, .ext_table = &t.table, .machine = t.machine, .observation = &obs});
  // Hot-region annotations ride on the same log, exactly as --trace-out
  // assembles them in tools/t1000_sim.cpp.
  const Profile prof = profile_program(t.program, 1ull << 32, &t.table);
  annotate_hot_regions(prof, t.program, &obs.trace);
  return obs.trace.to_json();
}

TEST(TraceSchema, PipelineTraceIsWellFormed) {
  const Json doc = record_full_trace(traced_program(50));
  // The serialized form must survive a parse round trip...
  const Json reparsed = Json::parse(doc.dump());
  EXPECT_EQ(reparsed.dump(), doc.dump());
  // ...and satisfy the viewer-facing structural contract.
  check_trace_schema(reparsed);
}

TEST(TraceSchema, TraceCoversAllThreeTrackGroups) {
  const Json doc = record_full_trace(traced_program(50));
  bool pipeline = false;
  bool pfu = false;
  bool hot = false;
  const Json& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& ev = events.at(i);
    if (ev.at("ph").as_string() == "M") continue;
    switch (ev.at("pid").as_int()) {
      case 1: pipeline = true; break;
      case 2: pfu = true; break;
      case 3: hot = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(pipeline) << "no instruction lifecycle slices";
  EXPECT_TRUE(pfu) << "no PFU reconfiguration spans";
  EXPECT_TRUE(hot) << "no profiler hot-region annotations";
}

// ---------------------------------------------------------------------------
// Golden fixture: the complete trace of a two-iteration run, byte for byte.

TEST(TraceGolden, SmallWorkloadTraceMatchesFixture) {
  const Json doc = record_full_trace(traced_program(2));
  const std::string text = doc.dump(2) + "\n";
  const std::string path = std::string(T1000_GOLDEN_DIR) + "/small_trace.json";

  if (std::getenv("T1000_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.is_open()) << "cannot write " << path;
    os << text;
    return;
  }

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.is_open())
      << "missing fixture " << path
      << " — regenerate with T1000_REGEN_GOLDEN=1 (see file comment)";
  std::ostringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(buf.str(), text)
      << "trace drifted from the golden fixture; if the change is "
      << "intended, regenerate with T1000_REGEN_GOLDEN=1 and review";
  // The fixture itself must satisfy the schema contract too.
  check_trace_schema(Json::parse(buf.str()));
}

}  // namespace
}  // namespace t1000::obs
