// MetricsRegistry unit tests: saturating arithmetic, get-or-create
// registration (and the abort on conflicting re-registration), histogram
// bucketing, and the deterministic JSON dump — including the decimal-string
// rendering of tallies too large for a signed JSON integer.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace t1000::obs {
namespace {

constexpr std::uint64_t kMax = ~0ull;

TEST(Metrics, CounterSaturatesInsteadOfWrapping) {
  Counter c;
  c.add(kMax - 5);
  EXPECT_EQ(c.value(), kMax - 5);
  c.add(3);
  EXPECT_EQ(c.value(), kMax - 2);
  // The increment that would wrap pegs at the ceiling instead...
  c.add(10);
  EXPECT_EQ(c.value(), kMax);
  // ...and a pegged counter stays pegged.
  c.add(kMax);
  EXPECT_EQ(c.value(), kMax);
}

TEST(Metrics, SaturatingAddHandlesExtremes) {
  std::atomic<std::uint64_t> cell{0};
  saturating_add(cell, 0);
  EXPECT_EQ(cell.load(), 0u);
  saturating_add(cell, kMax);
  EXPECT_EQ(cell.load(), kMax);
  saturating_add(cell, 1);
  EXPECT_EQ(cell.load(), kMax);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Histogram h({10, 20});
  ASSERT_EQ(h.num_buckets(), 3u);  // two bounded + overflow
  h.observe(0);
  h.observe(10);  // inclusive: lands in the <=10 bucket
  h.observe(11);
  h.observe(20);
  h.observe(21);  // above the last bound: overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 62u);
}

TEST(Metrics, HistogramSumSaturates) {
  Histogram h({100});
  h.observe(kMax);
  h.observe(kMax);
  EXPECT_EQ(h.sum(), kMax);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Metrics, SpanAccumulatesScopes) {
  Span s;
  s.record_ns(100);
  s.record_ns(250);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.total_ns(), 350u);
  { const Span::Scope scope = s.scope(); }
  EXPECT_EQ(s.count(), 3u);
  EXPECT_GE(s.total_ns(), 350u);
}

TEST(Metrics, RegistrationIsGetOrCreate) {
  MetricsRegistry reg;
  Counter* a = reg.counter("grid.runs");
  Counter* b = reg.counter("grid.runs");
  EXPECT_EQ(a, b);
  Histogram* h1 = reg.histogram("grid.wall_ms", {1, 10, 100});
  Histogram* h2 = reg.histogram("grid.wall_ms", {1, 10, 100});
  EXPECT_EQ(h1, h2);
  Span* s1 = reg.span("grid.wall");
  Span* s2 = reg.span("grid.wall");
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(reg.size(), 3u);
  // Shared instrument: updates through either handle land in one place.
  a->add(2);
  b->add(3);
  EXPECT_EQ(a->value(), 5u);
}

using MetricsDeathTest = ::testing::Test;

TEST(MetricsDeathTest, ReRegisteringNameAsDifferentKindAborts) {
  // Two subsystems silently sharing one name across kinds is a bug worth
  // dying for (see metrics.hpp).
  EXPECT_DEATH(
      {
        MetricsRegistry reg;
        reg.counter("grid.runs");
        reg.span("grid.runs");
      },
      "conflicting registration of metric 'grid.runs'");
  EXPECT_DEATH(
      {
        MetricsRegistry reg;
        reg.histogram("grid.wall_ms", {1, 2});
        reg.counter("grid.wall_ms");
      },
      "different kind");
}

TEST(MetricsDeathTest, ReRegisteringHistogramWithDifferentBucketsAborts) {
  EXPECT_DEATH(
      {
        MetricsRegistry reg;
        reg.histogram("grid.wall_ms", {1, 2, 3});
        reg.histogram("grid.wall_ms", {1, 2});
      },
      "different buckets");
}

TEST(MetricsDeathTest, NonAscendingHistogramBoundsAbort) {
  EXPECT_DEATH(
      {
        MetricsRegistry reg;
        reg.histogram("bad", {10, 10, 20});
      },
      "ascending");
}

TEST(Metrics, ToJsonIsDeterministicAndSorted) {
  const auto populate = [](MetricsRegistry& reg) {
    reg.counter("b.counter")->add(7);
    reg.histogram("a.hist", {5, 50})->observe(3);
    reg.histogram("a.hist", {5, 50})->observe(60);
    reg.span("c.span")->record_ns(123);
  };
  MetricsRegistry one;
  MetricsRegistry two;
  populate(one);
  populate(two);
  // Same observations => byte-identical dumps, members sorted by name.
  EXPECT_EQ(one.to_json().dump(2), two.to_json().dump(2));
  const std::string text = one.to_json().dump();
  EXPECT_LT(text.find("a.hist"), text.find("b.counter"));
  EXPECT_LT(text.find("b.counter"), text.find("c.span"));
  const Json j = one.to_json();
  EXPECT_EQ(j.at("b.counter").at("type").as_string(), "counter");
  EXPECT_EQ(j.at("b.counter").at("value").as_uint(), 7u);
  EXPECT_EQ(j.at("a.hist").at("count").as_uint(), 2u);
  EXPECT_EQ(j.at("a.hist").at("sum").as_uint(), 63u);
  EXPECT_EQ(j.at("a.hist").at("buckets").at(0).as_uint(), 1u);
  EXPECT_EQ(j.at("a.hist").at("buckets").at(2).as_uint(), 1u);
  EXPECT_EQ(j.at("c.span").at("count").as_uint(), 1u);
}

TEST(Metrics, SaturatedValuesRenderAsDecimalStrings) {
  // Json integers are signed 64-bit; a pegged tally must still dump
  // losslessly (as a decimal string) instead of throwing.
  MetricsRegistry reg;
  reg.counter("pegged")->add(kMax);
  const Json j = reg.to_json();
  EXPECT_EQ(j.at("pegged").at("value").as_string(), "18446744073709551615");
  EXPECT_NE(j.dump().find("\"18446744073709551615\""), std::string::npos);
}

TEST(Metrics, ConcurrentUpdatesAreExact) {
  // Hot paths are lock-free atomics: hammering one instrument from many
  // threads must lose no updates (and must be clean under TSan, where this
  // test also runs in CI).
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.counter("hammer.counter");
      Histogram* h = reg.histogram("hammer.hist", {8, 64, 512});
      Span* s = reg.span("hammer.span");
      for (int i = 0; i < kIters; ++i) {
        c->add(1);
        h->observe(static_cast<std::uint64_t>(i % 1000));
        s->record_ns(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(reg.counter("hammer.counter")->value(), kTotal);
  Histogram* h = reg.histogram("hammer.hist", {8, 64, 512});
  EXPECT_EQ(h->count(), kTotal);
  std::uint64_t buckets = 0;
  for (std::size_t i = 0; i < h->num_buckets(); ++i) {
    buckets += h->bucket_count(i);
  }
  EXPECT_EQ(buckets, kTotal);
  EXPECT_EQ(reg.span("hammer.span")->count(), kTotal);
  EXPECT_EQ(reg.span("hammer.span")->total_ns(), kTotal);
}

}  // namespace
}  // namespace t1000::obs
