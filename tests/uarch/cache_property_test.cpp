// Property test: the production cache must agree hit-for-hit with a naive
// reference implementation of set-associative LRU over random address
// streams and several geometries.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <vector>

#include "uarch/cache.hpp"

namespace t1000 {
namespace {

// Straightforward reference: per-set list ordered most-recent-first.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& config) : config_(config) {
    sets_.resize(config.num_sets());
  }

  bool access(std::uint32_t addr) {
    const std::uint32_t line = addr / config_.line_bytes;
    const std::uint32_t set = line % config_.num_sets();
    const std::uint32_t tag = line / config_.num_sets();
    std::list<std::uint32_t>& lru = sets_[set];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == tag) {
        lru.erase(it);
        lru.push_front(tag);
        return true;
      }
    }
    lru.push_front(tag);
    if (lru.size() > config_.assoc) lru.pop_back();
    return false;
  }

 private:
  CacheConfig config_;
  std::vector<std::list<std::uint32_t>> sets_;
};

struct Geometry {
  std::uint32_t size;
  std::uint32_t line;
  std::uint32_t assoc;
};

class CacheAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CacheAgreement, MatchesReferenceOnRandomStreams) {
  const Geometry geoms[] = {
      {256, 16, 1}, {256, 16, 2}, {512, 32, 4}, {1024, 64, 2}, {128, 16, 8},
  };
  std::uint32_t state = static_cast<std::uint32_t>(GetParam()) * 2654435761u + 99;
  auto rng = [&state] {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  };
  for (const Geometry& g : geoms) {
    const CacheConfig cfg{.size_bytes = g.size, .line_bytes = g.line,
                          .assoc = g.assoc, .hit_latency = 1};
    Cache cache(cfg);
    ReferenceCache ref(cfg);
    for (int i = 0; i < 4000; ++i) {
      // Mix of tight and scattered addresses to exercise conflicts.
      const std::uint32_t addr =
          (rng() % 8 == 0) ? rng() % (1u << 16) : rng() % (4 * g.size);
      ASSERT_EQ(cache.access(addr), ref.access(addr))
          << "geometry " << g.size << "/" << g.line << "/" << g.assoc
          << " access " << i << " addr " << addr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheAgreement, ::testing::Range(1, 9));

}  // namespace
}  // namespace t1000
