// Differential/property test for the PFU bank against a naive reference.
//
// PfuBank (uarch/pfu.cpp) keeps a conf -> unit hash map and an LRU clock;
// this file re-implements the Section 2.2 semantics in the most obvious
// way possible — a flat array scanned linearly — and drives both models
// with the same randomized request streams. Every return value (the
// issue-ready cycle) and every statistics counter must match exactly, for
// bank sizes from 1 to unlimited and reconfiguration latencies from free
// to punitive.
#include "uarch/pfu.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace t1000 {
namespace {

// The reference model: no hash map, no tie-break subtleties — just the
// paper's words. A hit refreshes the LRU clock and waits for any
// in-flight load of that unit; a miss reloads the least-recently-used
// unit, serializing behind that unit's previous reconfiguration.
class ReferencePfuBank {
 public:
  explicit ReferencePfuBank(const PfuConfig& config) : config_(config) {
    if (config_.count != PfuConfig::kUnlimited) {
      units_.resize(static_cast<std::size_t>(config_.count));
    }
  }

  std::uint64_t request(ConfId conf, std::uint64_t now) {
    ++stats_.lookups;
    ++tick_;
    for (Unit& u : units_) {
      if (u.conf == conf) {
        u.last_use = tick_;
        ++stats_.hits;
        return std::max(now, u.ready_at);
      }
    }
    ++stats_.reconfigurations;
    const auto latency = static_cast<std::uint64_t>(config_.reconfig_latency);
    if (config_.count == PfuConfig::kUnlimited) {
      units_.push_back({conf, now + latency, tick_});
      return units_.back().ready_at;
    }
    Unit* victim = &units_[0];
    for (Unit& u : units_) {
      if (u.last_use < victim->last_use) victim = &u;
    }
    victim->conf = conf;
    victim->ready_at = std::max(now, victim->ready_at) + latency;
    victim->last_use = tick_;
    return victim->ready_at;
  }

  const PfuStats& stats() const { return stats_; }

 private:
  struct Unit {
    ConfId conf = kInvalidConf;
    std::uint64_t ready_at = 0;
    std::uint64_t last_use = 0;
  };
  PfuConfig config_;
  std::vector<Unit> units_;
  std::uint64_t tick_ = 0;
  PfuStats stats_;
};

void expect_stats_equal(const PfuStats& got, const PfuStats& want,
                        const std::string& context) {
  EXPECT_EQ(got.lookups, want.lookups) << context;
  EXPECT_EQ(got.hits, want.hits) << context;
  EXPECT_EQ(got.reconfigurations, want.reconfigurations) << context;
}

// One fuzz episode: `requests` random (conf, now) pairs with a
// non-decreasing clock, checked request by request.
void run_episode(const PfuConfig& config, std::uint32_t seed, int requests,
                 int conf_space) {
  PfuBank bank(config);
  ReferencePfuBank ref(config);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> conf_dist(0, conf_space - 1);
  std::uniform_int_distribution<int> advance(0, 12);

  std::uint64_t now = 0;
  for (int i = 0; i < requests; ++i) {
    now += static_cast<std::uint64_t>(advance(rng));
    const auto conf = static_cast<ConfId>(conf_dist(rng));
    const std::uint64_t got = bank.request(conf, now);
    const std::uint64_t want = ref.request(conf, now);
    ASSERT_EQ(got, want) << "request " << i << ": conf " << conf << " at cycle "
                         << now << " (count " << config.count << ", latency "
                         << config.reconfig_latency << ", seed " << seed << ")";
    // A unit is never ready before the request that (re)loads it.
    ASSERT_GE(got, now);
  }
  char context[96];
  std::snprintf(context, sizeof context, "count %d latency %d seed %u",
                config.count, config.reconfig_latency, seed);
  expect_stats_equal(bank.stats(), ref.stats(), context);
  EXPECT_EQ(bank.stats().lookups,
            bank.stats().hits + bank.stats().reconfigurations);
}

TEST(PfuProperty, MatchesReferenceAcrossSizesAndLatencies) {
  const int counts[] = {1, 2, 4, 8, PfuConfig::kUnlimited};
  const int latencies[] = {0, 1, 10, 100};
  std::uint32_t seed = 0xC0FFEE;
  for (const int count : counts) {
    for (const int latency : latencies) {
      PfuConfig config;
      config.count = count;
      config.reconfig_latency = latency;
      // Conf spaces below, at, and above the bank capacity: all-hit
      // steady states, exact fits, and LRU thrashing.
      for (const int conf_space : {1, 2, 3, 5, 9, 17}) {
        run_episode(config, seed++, 2000, conf_space);
      }
    }
  }
}

TEST(PfuProperty, HotConfNeverReconfiguresTwice) {
  // Property: a single configuration requested forever reconfigures at
  // most once, regardless of bank size.
  for (const int count : {1, 4, PfuConfig::kUnlimited}) {
    PfuConfig config;
    config.count = count;
    config.reconfig_latency = 10;
    PfuBank bank(config);
    for (std::uint64_t cycle = 0; cycle < 500; cycle += 3) {
      bank.request(7, cycle);
    }
    EXPECT_EQ(bank.stats().reconfigurations, 1u);
    EXPECT_EQ(bank.stats().hits, bank.stats().lookups - 1);
  }
}

TEST(PfuProperty, RotationBeyondCapacityAlwaysThrashes) {
  // Property: round-robin over count+1 configurations defeats LRU — every
  // request after the warm-up reconfigures.
  for (const int count : {1, 2, 4}) {
    PfuConfig config;
    config.count = count;
    config.reconfig_latency = 10;
    PfuBank bank(config);
    ReferencePfuBank ref(config);
    const int confs = count + 1;
    std::uint64_t now = 0;
    for (int i = 0; i < 200; ++i) {
      now += 20;  // past the reconfiguration latency: pure LRU behaviour
      const auto conf = static_cast<ConfId>(i % confs);
      ASSERT_EQ(bank.request(conf, now), ref.request(conf, now));
    }
    EXPECT_EQ(bank.stats().hits, 0u);
    EXPECT_EQ(bank.stats().reconfigurations, bank.stats().lookups);
  }
}

TEST(PfuProperty, BackToBackReconfigurationsSerialize) {
  // Two different configurations forced through a single PFU in the same
  // cycle: the second reload queues behind the first.
  PfuConfig config;
  config.count = 1;
  config.reconfig_latency = 10;
  PfuBank bank(config);
  ReferencePfuBank ref(config);
  EXPECT_EQ(bank.request(0, 5), 15u);
  EXPECT_EQ(bank.request(1, 5), 25u);
  EXPECT_EQ(ref.request(0, 5), 15u);
  EXPECT_EQ(ref.request(1, 5), 25u);
  // A hit on an in-flight configuration waits for the load, not the clock.
  EXPECT_EQ(bank.request(1, 6), 25u);
  EXPECT_EQ(ref.request(1, 6), 25u);
}

}  // namespace
}  // namespace t1000
