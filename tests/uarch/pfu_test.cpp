#include "uarch/pfu.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

TEST(PfuBank, FirstUseReconfigures) {
  PfuBank bank({.count = 2, .reconfig_latency = 10});
  EXPECT_EQ(bank.request(0, 100), 110u);
  EXPECT_EQ(bank.stats().reconfigurations, 1u);
  EXPECT_EQ(bank.stats().hits, 0u);
}

TEST(PfuBank, HitAfterLoad) {
  PfuBank bank({.count = 2, .reconfig_latency = 10});
  bank.request(0, 0);
  EXPECT_EQ(bank.request(0, 50), 50u);  // configured: issue immediately
  EXPECT_EQ(bank.stats().hits, 1u);
  EXPECT_EQ(bank.stats().reconfigurations, 1u);
}

TEST(PfuBank, HitDuringLoadWaits) {
  PfuBank bank({.count = 1, .reconfig_latency = 10});
  EXPECT_EQ(bank.request(0, 0), 10u);
  // Another instruction with the same Conf arrives while loading: it waits
  // for the same load, no second reconfiguration.
  EXPECT_EQ(bank.request(0, 3), 10u);
  EXPECT_EQ(bank.stats().reconfigurations, 1u);
}

TEST(PfuBank, LruReplacement) {
  PfuBank bank({.count = 2, .reconfig_latency = 10});
  bank.request(0, 0);   // unit A
  bank.request(1, 0);   // unit B
  bank.request(0, 20);  // touch conf 0
  bank.request(2, 30);  // evicts conf 1 (LRU)
  EXPECT_EQ(bank.request(0, 50), 50u);   // still resident
  EXPECT_EQ(bank.request(1, 50), 60u);   // was evicted, reconfigures
  EXPECT_EQ(bank.stats().reconfigurations, 4u);
}

TEST(PfuBank, ThrashingAlternation) {
  // One PFU, two configurations used alternately: every request
  // reconfigures (the Section 4 pathology).
  PfuBank bank({.count = 1, .reconfig_latency = 10});
  std::uint64_t now = 0;
  for (int i = 0; i < 10; ++i) {
    now = bank.request(static_cast<ConfId>(i % 2), now);
  }
  EXPECT_EQ(bank.stats().reconfigurations, 10u);
  EXPECT_EQ(bank.stats().hits, 0u);
  EXPECT_EQ(now, 100u);  // serialized reloads
}

TEST(PfuBank, BackToBackReloadsSerialize) {
  PfuBank bank({.count = 1, .reconfig_latency = 10});
  EXPECT_EQ(bank.request(0, 0), 10u);
  // A different conf requested at cycle 2: the unit is still loading conf 0
  // until 10, then loads conf 1 until 20.
  EXPECT_EQ(bank.request(1, 2), 20u);
}

TEST(PfuBank, UnlimitedGrowsPerConf) {
  PfuBank bank({.count = PfuConfig::kUnlimited, .reconfig_latency = 0});
  EXPECT_EQ(bank.request(0, 5), 5u);
  EXPECT_EQ(bank.request(1, 5), 5u);
  EXPECT_EQ(bank.request(2, 5), 5u);
  EXPECT_EQ(bank.size(), 3);
  EXPECT_EQ(bank.request(0, 9), 9u);
  EXPECT_EQ(bank.size(), 3);
  EXPECT_EQ(bank.stats().hits, 1u);
}

TEST(PfuBank, UnlimitedWithLatencyPaysOncePerConf) {
  PfuBank bank({.count = PfuConfig::kUnlimited, .reconfig_latency = 10});
  EXPECT_EQ(bank.request(0, 0), 10u);
  EXPECT_EQ(bank.request(0, 20), 20u);
  EXPECT_EQ(bank.stats().reconfigurations, 1u);
}

TEST(PfuBank, ZeroLatencyReconfigIsFree) {
  PfuBank bank({.count = 2, .reconfig_latency = 0});
  EXPECT_EQ(bank.request(0, 7), 7u);
  EXPECT_EQ(bank.request(1, 7), 7u);
  EXPECT_EQ(bank.request(2, 8), 8u);
}

}  // namespace
}  // namespace t1000
