// Golden-number regression tests for timing edge cases.
//
// Each scenario pins the full SimStats JSON of one microarchitectural
// corner — store-to-load timing, fetch stopping at taken branches, RUU-full
// dispatch stalls, and EXT issue blocked behind an in-flight
// reconfiguration — against a checked-in fixture under tests/uarch/golden/.
// Any timing-model change that moves these numbers must be deliberate:
// regenerate with
//
//   T1000_REGEN_GOLDEN=1 ./uarch_test --gtest_filter='TimingGolden.*'
//
// and review the fixture diff. Every scenario is additionally simulated
// through the trace-replay path (sim/trace.hpp), which must land on the
// very same golden numbers — a second, standing cycle-exactness check next
// to the full differential suite in tests/integration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "asmkit/assembler.hpp"
#include "harness/serialize.hpp"
#include "sim/trace.hpp"
#include "uarch/timing.hpp"

namespace t1000 {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(T1000_GOLDEN_DIR) + "/" + name + ".json";
}

void check_golden(const std::string& name, const Program& program,
                  const ExtInstTable* table, const MachineConfig& machine) {
  const SimStats direct = simulate({.program = &program, .ext_table = table, .machine = machine});
  const std::string text = to_json(direct).dump(2) + "\n";
  const std::string path = golden_path(name);

  if (std::getenv("T1000_REGEN_GOLDEN") != nullptr) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.is_open()) << "cannot write " << path;
    os << text;
    return;
  }

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.is_open())
      << "missing fixture " << path
      << " — regenerate with T1000_REGEN_GOLDEN=1 (see file comment)";
  std::ostringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(buf.str(), text)
      << name << ": timing drifted from the golden fixture; if the change "
      << "is intended, regenerate with T1000_REGEN_GOLDEN=1 and review";

  // The replayed run must reproduce the same golden numbers bit for bit.
  const CommittedTrace trace = record_trace(program, table, 1u << 22);
  const SimStats replayed = simulate({.program = &program, .ext_table = table, .trace = &trace, .machine = machine});
  EXPECT_EQ(to_json(replayed).dump(2) + "\n", text)
      << name << ": trace replay diverged from direct simulation";
}

TEST(TimingGolden, StoreToLoadForwarding) {
  // A load issued right behind a store to the same address must observe
  // the store's timing; the dependent add chains the iterations together.
  const Program p = assemble(R"(
        la $t0, buf
        li $s0, 50
  loop: sw $s0, 0($t0)
        lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 16
  )");
  check_golden("store_to_load_forwarding", p, nullptr, MachineConfig{});
}

TEST(TimingGolden, FetchStopsAtTakenBranch) {
  // Two taken branches per iteration: fetch must stop at each one, so the
  // 4-wide front end never fills a full fetch packet past them.
  const Program p = assemble(R"(
        li $s0, 200
  loop: addiu $v0, $v0, 3
        j mid
        addiu $v0, $v0, 99     # skipped: fetch must not run through `j`
  mid:  addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  check_golden("fetch_stop_taken_branch", p, nullptr, MachineConfig{});
}

TEST(TimingGolden, RuuFullDispatchStall) {
  // A tiny 4-entry RUU behind a cache-missing load: dispatch stalls until
  // commit drains, serializing the independent adds that follow.
  const Program p = assemble(R"(
        la $t0, buf
        li $s0, 256
  loop: lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $t2, $zero, 1
        addiu $t3, $zero, 2
        addiu $t4, $zero, 3
        addiu $t0, $t0, 64
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 16384
  )");
  MachineConfig machine;
  machine.ruu_size = 4;
  check_golden("ruu_full_dispatch_stall", p, nullptr, machine);
}

TEST(TimingGolden, ExtBlockedBehindReconfiguration) {
  // Two configurations alternating through one PFU: every EXT waits for a
  // fresh reconfiguration of the unit the previous EXT just reloaded.
  ExtInstTable table;
  table.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 1},
                              {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  table.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 2},
                              {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  const Program p = assemble(R"(
        li $t0, 3
        li $t1, 5
        li $s0, 100
  loop: ext $t2, $t0, $t1, 0
        ext $t3, $t0, $t1, 1
        addu $v0, $t2, $t3
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig machine;
  machine.pfu = {.count = 1, .reconfig_latency = 10};
  check_golden("ext_blocked_behind_reconfig", p, &table, machine);
}

}  // namespace
}  // namespace t1000
