#include "uarch/branch.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "uarch/timing.hpp"

namespace t1000 {
namespace {

Instruction beq() { return make_branch2(Opcode::kBeq, 1, 2, 0); }

TEST(BranchPredictor, PerfectAlwaysCorrect) {
  BranchPredictor bp({.kind = BranchPredictorKind::kPerfect});
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(bp.predict_and_update(beq(), 5, i % 2 == 0, 7));
  }
  EXPECT_EQ(bp.stats().conditional, 0u);  // perfect mode does not count
}

TEST(BranchPredictor, StaticNotTakenMatchesOutcome) {
  BranchPredictor bp({.kind = BranchPredictorKind::kStaticNotTaken});
  EXPECT_TRUE(bp.predict_and_update(beq(), 5, false, 7));
  EXPECT_FALSE(bp.predict_and_update(beq(), 5, true, 7));
  EXPECT_EQ(bp.stats().conditional, 2u);
  EXPECT_EQ(bp.stats().cond_mispredicts, 1u);
}

TEST(BranchPredictor, BimodalLearnsABiasedBranch) {
  BranchPredictor bp({.kind = BranchPredictorKind::kBimodal});
  int mispredicts = 0;
  for (int i = 0; i < 100; ++i) {
    if (!bp.predict_and_update(beq(), 5, true, 7)) ++mispredicts;
  }
  EXPECT_LE(mispredicts, 2);  // warms up within two updates
  EXPECT_GT(bp.stats().cond_accuracy(), 0.97);
}

TEST(BranchPredictor, BimodalToleratesOneOffFlips) {
  // Taken, taken, taken, not-taken pattern: 2-bit hysteresis keeps the
  // strongly-taken state through single flips.
  BranchPredictor bp({.kind = BranchPredictorKind::kBimodal});
  for (int i = 0; i < 4; ++i) bp.predict_and_update(beq(), 5, true, 7);
  EXPECT_FALSE(bp.predict_and_update(beq(), 5, false, 7));  // the flip misses
  EXPECT_TRUE(bp.predict_and_update(beq(), 5, true, 7));    // but state held
}

TEST(BranchPredictor, SeparateCountersPerPc) {
  BranchPredictor bp(
      {.kind = BranchPredictorKind::kBimodal, .bimodal_entries = 1024});
  for (int i = 0; i < 8; ++i) {
    bp.predict_and_update(beq(), 100, true, 7);
    bp.predict_and_update(beq(), 101, false, 7);
  }
  EXPECT_TRUE(bp.predict_and_update(beq(), 100, true, 7));
  EXPECT_TRUE(bp.predict_and_update(beq(), 101, false, 7));
}

TEST(BranchPredictor, IndirectJumpLastTarget) {
  BranchPredictor bp({.kind = BranchPredictorKind::kBimodal});
  const Instruction jr = make_jr(31);
  EXPECT_FALSE(bp.predict_and_update(jr, 9, true, 50));  // cold
  EXPECT_TRUE(bp.predict_and_update(jr, 9, true, 50));   // repeats
  EXPECT_FALSE(bp.predict_and_update(jr, 9, true, 60));  // target changed
  EXPECT_EQ(bp.stats().indirect, 3u);
  EXPECT_EQ(bp.stats().indirect_mispredicts, 2u);
}

TEST(BranchPredictor, DirectJumpsAlwaysPredicted) {
  BranchPredictor bp({.kind = BranchPredictorKind::kBimodal});
  EXPECT_TRUE(bp.predict_and_update(make_jump(Opcode::kJ, 3), 9, true, 3));
  EXPECT_TRUE(bp.predict_and_update(make_jump(Opcode::kJal, 3), 9, true, 3));
}

// --- pipeline integration ---

TEST(BranchTiming, MispredictionsCostCycles) {
  // A data-dependent unpredictable branch (alternates every iteration the
  // bimodal predictor mistracks about half the time in this pattern).
  const Program p = assemble(R"(
        li $s0, 2000
        li $t0, 0
  loop: andi $t1, $t0, 1
        beq $t1, $zero, even
        addiu $v0, $v0, 3
        j next
  even: addiu $v0, $v0, 5
  next: addiu $t0, $t0, 1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig perfect;
  MachineConfig bimodal;
  bimodal.branch.kind = BranchPredictorKind::kBimodal;
  const SimStats a = simulate({.program = &p, .machine = perfect});
  const SimStats b = simulate({.program = &p, .machine = bimodal});
  EXPECT_GT(b.cycles, a.cycles);
  EXPECT_GT(b.branch.conditional, 3000u);
  EXPECT_EQ(a.committed, b.committed);  // same work either way
}

TEST(BranchTiming, PredictableLoopNearlyMatchesPerfect) {
  const Program p = assemble(R"(
        li $s0, 5000
  loop: addiu $v0, $v0, 1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig perfect;
  MachineConfig bimodal;
  bimodal.branch.kind = BranchPredictorKind::kBimodal;
  const SimStats a = simulate({.program = &p, .machine = perfect});
  const SimStats b = simulate({.program = &p, .machine = bimodal});
  EXPECT_GT(b.branch.cond_accuracy(), 0.999);
  EXPECT_LT(static_cast<double>(b.cycles),
            static_cast<double>(a.cycles) * 1.02);
}

TEST(BranchTiming, StaticNotTakenIsSlowestOnLoops) {
  const Program p = assemble(R"(
        li $s0, 3000
  loop: addiu $v0, $v0, 1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig bimodal;
  bimodal.branch.kind = BranchPredictorKind::kBimodal;
  MachineConfig nt;
  nt.branch.kind = BranchPredictorKind::kStaticNotTaken;
  const SimStats b = simulate({.program = &p, .machine = bimodal});
  const SimStats n = simulate({.program = &p, .machine = nt});
  EXPECT_GT(n.cycles, b.cycles);  // every loop back edge mispredicts
}

}  // namespace
}  // namespace t1000

namespace t1000 {
namespace {

TEST(BranchPredictor, GshareLearnsAlternatingPattern) {
  // taken/not-taken alternation defeats bimodal (stuck near 50%) but is a
  // trivial pattern for gshare's history-indexed counters.
  BranchPredictor bimodal({.kind = BranchPredictorKind::kBimodal});
  BranchPredictor gshare({.kind = BranchPredictorKind::kGshare});
  const Instruction ins = make_branch2(Opcode::kBeq, 1, 2, 0);
  int bimodal_miss = 0;
  int gshare_miss = 0;
  for (int i = 0; i < 400; ++i) {
    const bool taken = i % 2 == 0;
    if (!bimodal.predict_and_update(ins, 7, taken, 9)) ++bimodal_miss;
    if (!gshare.predict_and_update(ins, 7, taken, 9)) ++gshare_miss;
  }
  EXPECT_LT(gshare_miss, 20);
  EXPECT_GT(bimodal_miss, 100);
}

TEST(BranchTiming, GshareWorksInThePipeline) {
  const Program p = assemble(R"(
        li $s0, 2000
        li $t0, 0
  loop: andi $t1, $t0, 1
        beq $t1, $zero, even
        addiu $v0, $v0, 3
        j next
  even: addiu $v0, $v0, 5
  next: addiu $t0, $t0, 1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig bimodal;
  bimodal.branch.kind = BranchPredictorKind::kBimodal;
  MachineConfig gshare;
  gshare.branch.kind = BranchPredictorKind::kGshare;
  const SimStats b = simulate({.program = &p, .machine = bimodal});
  const SimStats g = simulate({.program = &p, .machine = gshare});
  // The alternating inner branch is history-predictable.
  EXPECT_GT(g.branch.cond_accuracy(), b.branch.cond_accuracy());
  EXPECT_LT(g.cycles, b.cycles);
}

}  // namespace
}  // namespace t1000
