// Property-style sweeps over machine parameters: widening any resource must
// never slow the machine down, and shrinking key resources must visibly
// bite on workloads engineered to stress them.
#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "uarch/timing.hpp"

namespace t1000 {
namespace {

// An ILP-rich kernel with mixed ALU and memory work.
Program ilp_kernel() {
  return assemble(R"(
        la $t8, buf
        li $s0, 300
  loop: lw $t0, 0($t8)
        lw $t1, 4($t8)
        addiu $t2, $t0, 1
        addiu $t3, $t1, 2
        xor  $t4, $t2, $t3
        sll  $t5, $t0, 2
        subu $t6, $t5, $t1
        sw $t4, 8($t8)
        sw $t6, 12($t8)
        addu $v0, $v0, $t4
        addiu $t8, $t8, 4
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 4096
  )");
}

class WidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(WidthSweep, WiderMachinesAreMonotonicallyFaster) {
  const Program p = ilp_kernel();
  const int width = GetParam();
  MachineConfig narrow;
  narrow.fetch_width = narrow.decode_width = narrow.issue_width =
      narrow.commit_width = width;
  MachineConfig wide = narrow;
  wide.fetch_width = wide.decode_width = wide.issue_width =
      wide.commit_width = width + 1;
  const SimStats a = simulate({.program = &p, .machine = narrow});
  const SimStats b = simulate({.program = &p, .machine = wide});
  EXPECT_GE(a.cycles, b.cycles) << "width " << width;
  EXPECT_EQ(a.committed, b.committed);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep, ::testing::Values(1, 2, 3, 4, 6));

TEST(ConfigSweep, SingleIssueIsRoughlyScalar) {
  MachineConfig scalar;
  scalar.fetch_width = scalar.decode_width = scalar.issue_width =
      scalar.commit_width = 1;
  const Program p = ilp_kernel();
  const SimStats st = simulate({.program = &p, .machine = scalar});
  EXPECT_LE(st.ipc(), 1.0);
  EXPECT_GT(st.ipc(), 0.5);
}

class RuuSweep : public ::testing::TestWithParam<int> {};

TEST_P(RuuSweep, BiggerWindowsNeverHurt) {
  const Program p = ilp_kernel();
  MachineConfig small;
  small.ruu_size = GetParam();
  MachineConfig big;
  big.ruu_size = GetParam() * 2;
  const SimStats a = simulate({.program = &p, .machine = small});
  const SimStats b = simulate({.program = &p, .machine = big});
  EXPECT_GE(a.cycles, b.cycles) << "ruu " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RuuSizes, RuuSweep, ::testing::Values(4, 8, 16, 32));

TEST(ConfigSweep, TinyRuuThrottlesMemoryParallelism) {
  // A miss-heavy stride loop needs window capacity to overlap misses.
  const Program p = assemble(R"(
        la $t0, buf
        li $t1, 1024
  loop: lw $t2, 0($t0)
        addu $v0, $v0, $t2
        addiu $t0, $t0, 64
        addiu $t1, $t1, -1
        bgtz $t1, loop
        halt
        .data
  buf:  .space 65536
  )");
  MachineConfig tiny;
  tiny.ruu_size = 4;
  MachineConfig big;
  big.ruu_size = 128;
  const SimStats a = simulate({.program = &p, .machine = tiny});
  const SimStats b = simulate({.program = &p, .machine = big});
  EXPECT_GT(static_cast<double>(a.cycles),
            static_cast<double>(b.cycles) * 1.5);
}

TEST(ConfigSweep, MemPortsLimitThroughput) {
  // Loads/stores dominate; one port halves memory issue bandwidth.
  const Program p = assemble(R"(
        la $t8, buf
        li $s0, 500
  loop: lw $t0, 0($t8)
        lw $t1, 4($t8)
        sw $t0, 8($t8)
        sw $t1, 12($t8)
        addiu $t8, $t8, 4
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 4096
  )");
  MachineConfig one;
  one.mem_ports = 1;
  MachineConfig two;
  two.mem_ports = 2;
  const SimStats a = simulate({.program = &p, .machine = one});
  const SimStats b = simulate({.program = &p, .machine = two});
  EXPECT_GT(a.cycles, b.cycles);
}

TEST(ConfigSweep, AluCountLimitsIndependentWork) {
  std::string src = "  li $s0, 400\nloop:\n";
  for (int i = 0; i < 12; ++i) {
    src += "  addiu $t" + std::to_string(i % 6) + ", $zero, " +
           std::to_string(i) + "\n";
  }
  src += "  addiu $s0, $s0, -1\n  bgtz $s0, loop\n  halt\n";
  const Program p = assemble(src);
  MachineConfig one_alu;
  one_alu.int_alus = 1;
  MachineConfig four_alu;
  four_alu.int_alus = 4;
  const SimStats a = simulate({.program = &p, .machine = one_alu});
  const SimStats b = simulate({.program = &p, .machine = four_alu});
  EXPECT_GT(static_cast<double>(a.cycles),
            static_cast<double>(b.cycles) * 1.5);
}

class CacheSweep : public ::testing::TestWithParam<int> {};

TEST_P(CacheSweep, LargerCachesMissLess) {
  const Program p = assemble(R"(
        li $s1, 8
  pass: la $t0, buf
        li $t1, 512
  loop: lw $t2, 0($t0)
        addu $v0, $v0, $t2
        addiu $t0, $t0, 32
        addiu $t1, $t1, -1
        bgtz $t1, loop
        addiu $s1, $s1, -1
        bgtz $s1, pass
        halt
        .data
  buf:  .space 16384
  )");
  const std::uint32_t kb = static_cast<std::uint32_t>(GetParam());
  MachineConfig small;
  small.dl1.size_bytes = kb * 1024;
  MachineConfig big;
  big.dl1.size_bytes = kb * 2048;
  const SimStats a = simulate({.program = &p, .machine = small});
  const SimStats b = simulate({.program = &p, .machine = big});
  EXPECT_GE(a.dl1.misses, b.dl1.misses) << kb << " KiB";
  EXPECT_GE(a.cycles, b.cycles);
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, CacheSweep, ::testing::Values(2, 4, 8));

TEST(ConfigSweep, FetchQueueSizeNeverHurts) {
  const Program p = ilp_kernel();
  MachineConfig small;
  small.fetch_queue_size = 4;
  MachineConfig big;
  big.fetch_queue_size = 32;
  EXPECT_GE(simulate({.program = &p, .machine = small}).cycles,
            simulate({.program = &p, .machine = big}).cycles);
}

TEST(ConfigSweep, SlowerMemoryHurtsMissHeavyCode) {
  const Program p = assemble(R"(
        la $t0, buf
        li $t1, 1024
  loop: lw $t2, 0($t0)
        addu $v0, $v0, $t2
        addiu $t0, $t0, 64
        addiu $t1, $t1, -1
        bgtz $t1, loop
        halt
        .data
  buf:  .space 65536
  )");
  MachineConfig fast;
  fast.memory_latency = 18;
  MachineConfig slow;
  slow.memory_latency = 100;
  EXPECT_GT(simulate({.program = &p, .machine = slow}).cycles,
            simulate({.program = &p, .machine = fast}).cycles);
}

}  // namespace
}  // namespace t1000
