// Tests for the write-back/writeback-counting cache behaviour and the
// MSHR (outstanding-miss) limit.
#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "uarch/cache.hpp"
#include "uarch/timing.hpp"

namespace t1000 {
namespace {

CacheConfig tiny_cache() {
  return {.size_bytes = 64, .line_bytes = 16, .assoc = 1, .hit_latency = 1};
}

TEST(Writeback, DirtyEvictionCounts) {
  Cache c(tiny_cache());
  c.access(0x0000, /*is_write=*/true);   // fill set 0, dirty
  EXPECT_EQ(c.stats().writebacks, 0u);
  c.access(0x0040, /*is_write=*/false);  // evicts dirty line
  EXPECT_EQ(c.stats().writebacks, 1u);
  c.access(0x0000, /*is_write=*/false);  // evicts clean line
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Writeback, ReadHitDoesNotDirty) {
  Cache c(tiny_cache());
  c.access(0x0000, false);
  c.access(0x0004, false);  // read hit, same line
  c.access(0x0040, false);  // evict
  EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Writeback, WriteHitDirtiesExistingLine) {
  Cache c(tiny_cache());
  c.access(0x0000, false);  // clean fill
  c.access(0x0004, true);   // write hit dirties it
  c.access(0x0040, false);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Writeback, StoreStreamProducesWritebacks) {
  // Stream stores over 64 KiB: every DL1 line comes back out dirty.
  const Program p = assemble(R"(
        la $t0, buf
        li $t1, 2048
  loop: sw $t1, 0($t0)
        addiu $t0, $t0, 32
        addiu $t1, $t1, -1
        bgtz $t1, loop
        halt
        .data
  buf:  .space 65536
  )");
  const SimStats st = simulate({.program = &p, .machine = MachineConfig{}});
  EXPECT_GT(st.dl1.writebacks, 1000u);
}

TEST(Mshr, LimitThrottlesMemoryLevelParallelism) {
  // Independent streaming misses: unlimited MSHRs overlap them; a single
  // MSHR serializes, costing far more cycles.
  const Program p = assemble(R"(
        la $t0, buf
        li $t1, 1024
  loop: lw $t2, 0($t0)
        addu $v0, $v0, $t2
        addiu $t0, $t0, 64
        addiu $t1, $t1, -1
        bgtz $t1, loop
        halt
        .data
  buf:  .space 65536
  )");
  MachineConfig unlimited;
  MachineConfig one;
  one.max_outstanding_misses = 1;
  MachineConfig four;
  four.max_outstanding_misses = 4;
  const SimStats u = simulate({.program = &p, .machine = unlimited});
  const SimStats f = simulate({.program = &p, .machine = four});
  const SimStats o = simulate({.program = &p, .machine = one});
  EXPECT_GT(static_cast<double>(o.cycles), static_cast<double>(u.cycles) * 1.3);
  EXPECT_GE(o.cycles, f.cycles);
  EXPECT_GE(f.cycles, u.cycles);
  EXPECT_EQ(u.committed, o.committed);
}

TEST(Mshr, CacheHitsUnaffectedByLimit) {
  // A hot small buffer: everything hits after warmup, so MSHR=1 costs
  // almost nothing.
  const Program p = assemble(R"(
        la $t0, buf
        li $t1, 2000
  loop: lw $t2, 0($t0)
        lw $t3, 4($t0)
        addu $v0, $t2, $t3
        addiu $t1, $t1, -1
        bgtz $t1, loop
        halt
        .data
  buf:  .space 64
  )");
  MachineConfig unlimited;
  MachineConfig one;
  one.max_outstanding_misses = 1;
  const SimStats u = simulate({.program = &p, .machine = unlimited});
  const SimStats o = simulate({.program = &p, .machine = one});
  EXPECT_LE(static_cast<double>(o.cycles),
            static_cast<double>(u.cycles) * 1.02);
}

}  // namespace
}  // namespace t1000
