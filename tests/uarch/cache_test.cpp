#include "uarch/cache.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

CacheConfig small_cache() {
  // 4 sets x 2 ways x 16B lines = 128 B.
  return {.size_bytes = 128, .line_bytes = 16, .assoc = 2, .hit_latency = 1};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x100C));  // same 16B line
  EXPECT_FALSE(c.access(0x1010));  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, SetConflictEvictsLru) {
  Cache c(small_cache());
  // Three lines mapping to set 0 (stride = sets*line = 64B).
  EXPECT_FALSE(c.access(0x0000));
  EXPECT_FALSE(c.access(0x0040));
  EXPECT_TRUE(c.access(0x0000));   // touch: 0x0040 becomes LRU
  EXPECT_FALSE(c.access(0x0080));  // evicts 0x0040
  EXPECT_TRUE(c.access(0x0000));
  EXPECT_FALSE(c.access(0x0040));  // was evicted
}

TEST(Cache, DifferentSetsDoNotConflict) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x0000));  // set 0
  EXPECT_FALSE(c.access(0x0010));  // set 1
  EXPECT_FALSE(c.access(0x0020));  // set 2
  EXPECT_FALSE(c.access(0x0030));  // set 3
  EXPECT_TRUE(c.access(0x0000));
  EXPECT_TRUE(c.access(0x0010));
}

TEST(Cache, DirectMappedThrashes) {
  CacheConfig cfg = small_cache();
  cfg.assoc = 1;
  cfg.size_bytes = 64;  // 4 sets x 1 way
  Cache c(cfg);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(c.access(0x0000));
    EXPECT_FALSE(c.access(0x0040));  // same set, evicts
  }
  EXPECT_EQ(c.stats().misses, 8u);
}

TEST(Tlb, HitAfterFill) {
  Tlb t({.entries = 2, .page_bytes = 4096, .miss_latency = 30});
  EXPECT_EQ(t.access(0x1000), 30);
  EXPECT_EQ(t.access(0x1FFF), 0);  // same page
  EXPECT_EQ(t.access(0x2000), 30);
  EXPECT_EQ(t.access(0x1000), 0);
}

TEST(Tlb, LruReplacement) {
  Tlb t({.entries = 2, .page_bytes = 4096, .miss_latency = 30});
  t.access(0x1000);            // page 1
  t.access(0x2000);            // page 2
  EXPECT_EQ(t.access(0x1000), 0);   // touch page 1
  EXPECT_EQ(t.access(0x3000), 30);  // evicts page 2
  EXPECT_EQ(t.access(0x1000), 0);
  EXPECT_EQ(t.access(0x2000), 30);
}

TEST(MemHierarchy, LatenciesCompose) {
  Cache l2({.size_bytes = 1024, .line_bytes = 64, .assoc = 2, .hit_latency = 6});
  MemHierarchy m({.size_bytes = 128, .line_bytes = 16, .assoc = 2, .hit_latency = 1},
                 &l2, 18, {.entries = 64, .page_bytes = 4096, .miss_latency = 30});
  // Cold: TLB miss 30 + L1 hit-time 1 + L2 hit-time 6 + memory 18.
  EXPECT_EQ(m.access(0x1000), 30 + 1 + 6 + 18);
  // Warm: 1 cycle.
  EXPECT_EQ(m.access(0x1000), 1);
  // L1 evict but L2 retains: walk enough lines to evict 0x1000 from L1.
  for (std::uint32_t a = 0x2000; a < 0x2000 + 4 * 128; a += 16) m.access(a);
  EXPECT_EQ(m.access(0x1000), 1 + 6);  // L1 miss, L2 hit (same 64B line)
}

TEST(MemHierarchy, SharedL2SeesBothSides) {
  Cache l2({.size_bytes = 1024, .line_bytes = 64, .assoc = 2, .hit_latency = 6});
  MemHierarchy i({.size_bytes = 128, .line_bytes = 16, .assoc = 1, .hit_latency = 1},
                 &l2, 18, {});
  MemHierarchy d({.size_bytes = 128, .line_bytes = 16, .assoc = 1, .hit_latency = 1},
                 &l2, 18, {});
  i.access(0x5000);
  // The D side misses its own L1 but hits the line the I side brought into
  // the shared L2.
  EXPECT_EQ(d.access(0x5004), 30 + 1 + 6);  // D-TLB miss + L1 + L2 hit
}

}  // namespace
}  // namespace t1000
