// Stall-cause attribution: the observability layer's accounting proof.
//
// Every non-committing cycle must be charged to exactly one StallCause —
// the invariant is cause_cycles() == stall_cycles() with no residue — and
// turning observation on must never perturb the simulation itself: the
// SimStats of an observed run are byte-identical to an unobserved one.
// The scenarios reuse the microarchitectural corners from
// timing_golden_test.cpp so each dominant cause is known by construction.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "asmkit/assembler.hpp"
#include "harness/serialize.hpp"
#include "sim/trace.hpp"
#include "uarch/timing.hpp"

namespace t1000 {
namespace {

struct Scenario {
  std::string name;
  Program program;
  ExtInstTable table;  // empty = no EXT semantics needed
  MachineConfig machine;

  const ExtInstTable* table_ptr() const {
    return table.size() > 0 ? &table : nullptr;
  }
};

Scenario store_to_load() {
  Scenario s;
  s.name = "store_to_load";
  s.program = assemble(R"(
        la $t0, buf
        li $s0, 50
  loop: sw $s0, 0($t0)
        lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 16
  )");
  return s;
}

Scenario ruu_full() {
  Scenario s;
  s.name = "ruu_full";
  s.program = assemble(R"(
        la $t0, buf
        li $s0, 256
  loop: lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $t2, $zero, 1
        addiu $t3, $zero, 2
        addiu $t4, $zero, 3
        addiu $t0, $t0, 64
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 16384
  )");
  s.machine.ruu_size = 4;
  return s;
}

Scenario ext_blocked() {
  Scenario s;
  s.name = "ext_blocked";
  s.table.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 1},
                                {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  s.table.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 2},
                                {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  s.program = assemble(R"(
        li $t0, 3
        li $t1, 5
        li $s0, 100
  loop: ext $t2, $t0, $t1, 0
        ext $t3, $t0, $t1, 1
        addu $v0, $t2, $t3
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  s.machine.pfu = {.count = 1, .reconfig_latency = 10};
  return s;
}

Scenario mispredicting_branches() {
  Scenario s;
  s.name = "mispredict";
  // A data-dependent alternating branch defeats the bimodal predictor.
  s.program = assemble(R"(
        li $s0, 400
  loop: andi $t0, $s0, 1
        bgtz $t0, odd
        addiu $v0, $v0, 1
        j next
  odd:  addiu $v0, $v0, 2
  next: addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  s.machine.branch.kind = BranchPredictorKind::kBimodal;
  return s;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back(store_to_load());
  out.push_back(ruu_full());
  out.push_back(ext_blocked());
  out.push_back(mispredicting_branches());
  return out;
}

TEST(StallAttribution, EveryNonCommittingCycleChargedExactlyOnce) {
  for (const Scenario& s : scenarios()) {
    SimObservation obs;
    const SimStats st =
        simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine, .observation = &obs});
    EXPECT_EQ(obs.stalls.cycles, st.cycles) << s.name;
    // The invariant: commit cycles plus per-cause charges account for
    // every simulated cycle, with no double counting and no residue.
    EXPECT_EQ(obs.stalls.cause_cycles(), obs.stalls.stall_cycles()) << s.name;
    EXPECT_LE(obs.stalls.commit_cycles, obs.stalls.cycles) << s.name;
  }
}

TEST(StallAttribution, ObservationNeverPerturbsSimStats) {
  for (const Scenario& s : scenarios()) {
    const SimStats plain = simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine});
    SimObservation obs;
    const SimStats observed =
        simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine, .observation = &obs});
    EXPECT_EQ(to_json(plain).dump(), to_json(observed).dump()) << s.name;
    // Full event tracing must be equally invisible to the statistics.
    SimObservation traced;
    traced.want_trace = true;
    const SimStats with_trace =
        simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine, .observation = &traced});
    EXPECT_EQ(to_json(plain).dump(), to_json(with_trace).dump()) << s.name;
    EXPECT_FALSE(traced.trace.empty()) << s.name;
  }
}

TEST(StallAttribution, ExtBlockedChargesReconfigurationWait) {
  const Scenario s = ext_blocked();
  SimObservation obs;
  const SimStats st =
      simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine, .observation = &obs});
  // Every EXT in the steady state waits behind a 10-cycle configuration
  // load of the single PFU: ext_reconfig must dominate the stalls.
  EXPECT_GT(obs.stalls.of(StallCause::kExtReconfig), 0u);
  EXPECT_GT(obs.stalls.of(StallCause::kExtReconfig),
            obs.stalls.stall_cycles() / 2);
  // The PFU timeline agrees with the aggregate PFU statistics.
  std::uint64_t reconfigs = 0;
  std::uint64_t hits = 0;
  for (const PfuUnitCounters& u : obs.pfu_units) {
    reconfigs += u.reconfigurations;
    hits += u.hits;
  }
  EXPECT_EQ(reconfigs, st.pfu.reconfigurations);
  EXPECT_EQ(hits, st.pfu.hits);
  EXPECT_EQ(obs.pfu_spans.size(), st.pfu.reconfigurations);
  for (const PfuReconfigSpan& span : obs.pfu_spans) {
    EXPECT_EQ(span.ready - span.start,
              static_cast<std::uint64_t>(s.machine.pfu.reconfig_latency));
    EXPECT_EQ(span.unit, 0);  // single-PFU machine
  }
}

TEST(StallAttribution, MispredictedBranchesChargeFetch) {
  const Scenario s = mispredicting_branches();
  SimObservation obs;
  const SimStats st =
      simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine, .observation = &obs});
  ASSERT_GT(st.branch.cond_mispredicts, 0u);
  // Redirect bubbles after each mispredicted branch land on fetch_branch.
  EXPECT_GT(obs.stalls.of(StallCause::kFetchBranch), 0u);
}

TEST(StallAttribution, TinyRuuChargesWindowBackpressure) {
  const Scenario s = ruu_full();
  SimObservation obs;
  simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine, .observation = &obs});
  // A 4-entry RUU behind a cache-missing load: the window is full behind
  // the in-flight head for almost every stalled cycle.
  EXPECT_GT(obs.stalls.of(StallCause::kRuuFull), 0u);
  EXPECT_GT(obs.stalls.of(StallCause::kRuuFull),
            obs.stalls.stall_cycles() / 2);
}

TEST(StallAttribution, StoreToLoadChargesExecutionSideCauses) {
  const Scenario s = store_to_load();
  SimObservation obs;
  simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine, .observation = &obs});
  // The serialized sw->lw->addu chain keeps the head in flight (memory
  // long-misses on the cold lines, plain execution otherwise), and the
  // short program's trailing halt drains through an empty front end.
  EXPECT_GT(obs.stalls.of(StallCause::kExecMem), 0u);
  EXPECT_GT(obs.stalls.of(StallCause::kFetchMem), 0u);
  EXPECT_GT(obs.stalls.of(StallCause::kDrain), 0u);
}

TEST(StallAttribution, ReplayProducesIdenticalBreakdown) {
  for (const Scenario& s : scenarios()) {
    SimObservation direct;
    simulate({.program = &s.program, .ext_table = s.table_ptr(), .machine = s.machine, .observation = &direct});

    const CommittedTrace trace = record_trace(s.program, s.table_ptr(), 1u << 22);
    SimObservation replayed;
    simulate({.program = &s.program, .ext_table = s.table_ptr(), .trace = &trace, .machine = s.machine, .observation = &replayed});
    EXPECT_EQ(to_json(direct.stalls).dump(), to_json(replayed.stalls).dump())
        << s.name;
  }
}

TEST(StallAttribution, CauseNamesAreUniqueAndRoundTrip) {
  std::set<std::string> names;
  for (int c = 0; c < kNumStallCauses; ++c) {
    const std::string name{stall_cause_name(static_cast<StallCause>(c))};
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  // serialize.cpp's JSON round-trip preserves every cause slot.
  StallBreakdown sb;
  sb.cycles = 1000;
  sb.commit_cycles = 400;
  for (int c = 0; c < kNumStallCauses; ++c) {
    sb.causes[c] = static_cast<std::uint64_t>(c + 1) * 7;
  }
  const StallBreakdown back = stall_breakdown_from_json(to_json(sb));
  EXPECT_EQ(to_json(back).dump(), to_json(sb).dump());
}

}  // namespace
}  // namespace t1000
