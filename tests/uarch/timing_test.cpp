#include "uarch/timing.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"

namespace t1000 {
namespace {

MachineConfig base_machine() {
  MachineConfig cfg;
  return cfg;
}

TEST(Timing, CommitsEveryInstructionExactlyOnce) {
  const Program p = assemble(R"(
        li $t0, 0
        li $t1, 100
  loop: addiu $t0, $t0, 1
        bne $t0, $t1, loop
        halt
  )");
  const SimStats st = simulate({.program = &p, .machine = base_machine()});
  EXPECT_EQ(st.committed, 2u + 100 * 2 + 1);
  EXPECT_GT(st.cycles, 0u);
}

TEST(Timing, IndependentOpsReachSuperscalarIpc) {
  // Long stretches of independent single-cycle ops: IPC should approach the
  // 4-wide limit once caches warm up.
  std::string src;
  for (int i = 0; i < 200; ++i) {
    src += "  addiu $t" + std::to_string(i % 8) + ", $zero, " +
           std::to_string(i % 100) + "\n";
  }
  // Repeat the block via a loop to amortize cold-start.
  std::string full = "  li $s0, 200\nloop:\n" + src +
                     "  addiu $s0, $s0, -1\n  bgtz $s0, loop\n  halt\n";
  const Program p = assemble(full);
  const SimStats st = simulate({.program = &p, .machine = base_machine()});
  EXPECT_GT(st.ipc(), 3.0);
  EXPECT_LE(st.ipc(), 4.0);
}

TEST(Timing, DependentChainLimitsIpc) {
  std::string src = "  li $s0, 200\nloop:\n";
  for (int i = 0; i < 64; ++i) src += "  addiu $t0, $t0, 1\n";
  src += "  addiu $s0, $s0, -1\n  bgtz $s0, loop\n  halt\n";
  const Program p = assemble(src);
  const SimStats st = simulate({.program = &p, .machine = base_machine()});
  // The dependent chain serializes: ~1 IPC.
  EXPECT_LT(st.ipc(), 1.3);
  EXPECT_GT(st.ipc(), 0.8);
}

TEST(Timing, MulLatencyVisible) {
  // A dependent multiply chain that crosses iterations serializes at the
  // 3-cycle multiply latency (t0 stays 1, so the chain never widens).
  std::string src = "  li $s0, 100\n  li $t0, 1\nloop:\n";
  for (int i = 0; i < 16; ++i) src += "  mul $t0, $t0, $t0\n";
  src += "  addiu $s0, $s0, -1\n  bgtz $s0, loop\n  halt\n";
  const Program p = assemble(src);
  const SimStats st = simulate({.program = &p, .machine = base_machine()});
  EXPECT_LT(st.ipc(), 0.5);
  EXPECT_GT(st.ipc(), 0.25);
}

TEST(Timing, CacheMissesCostCycles) {
  // Stride through a buffer far larger than DL1 (16 KiB): many L1 misses.
  const Program p = assemble(R"(
        la $t0, buf
        li $t1, 2048          # 2048 * 32B stride = 64 KiB > DL1
        li $v0, 0
  loop: lw $t2, 0($t0)
        addu $v0, $v0, $t2
        addiu $t0, $t0, 32
        addiu $t1, $t1, -1
        bgtz $t1, loop
        halt
        .data
  buf:  .space 65536
  )");
  const SimStats st = simulate({.program = &p, .machine = base_machine()});
  EXPECT_GT(st.dl1.misses, 1500u);
  // Misses cost latency; independent loads overlap (no MSHR limit is
  // modelled), so IPC dips but does not collapse.
  EXPECT_LT(st.ipc(), 3.0);
}

TEST(Timing, WarmLoopHasFewIcacheMisses) {
  const Program p = assemble(R"(
        li $t1, 1000
  loop: addiu $t1, $t1, -1
        bgtz $t1, loop
        halt
  )");
  const SimStats st = simulate({.program = &p, .machine = base_machine()});
  EXPECT_LE(st.il1.misses, 4u);
}

TEST(Timing, StoreToLoadDependencyRespected) {
  // A load must see the just-stored value's timing (it waits for the
  // store), so a store->load->add chain is slow; the run must terminate
  // with all instructions committed.
  const Program p = assemble(R"(
        la $t0, buf
        li $s0, 50
  loop: sw $s0, 0($t0)
        lw $t1, 0($t0)
        addu $v0, $v0, $t1
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
        .data
  buf:  .space 16
  )");
  const SimStats st = simulate({.program = &p, .machine = base_machine()});
  EXPECT_EQ(st.committed, 3u + 50 * 5 + 1);  // la expands to 2 instructions
}

TEST(Timing, ExtNeedsReconfigOnlyOnce) {
  ExtInstTable table;
  table.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 2},
                              {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  const Program p = assemble(R"(
        li $t0, 3
        li $t1, 5
        li $s0, 100
  loop: ext $t2, $t0, $t1, 0
        sw $t2, 0($sp)
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig cfg = base_machine();
  cfg.pfu = {.count = 2, .reconfig_latency = 10};
  const SimStats st = simulate({.program = &p, .ext_table = &table, .machine = cfg});
  EXPECT_EQ(st.pfu.reconfigurations, 1u);
  EXPECT_EQ(st.pfu.lookups, 100u);
  EXPECT_EQ(st.pfu.hits, 99u);
}

TEST(Timing, PfuThrashingIsSlowerThanBaseline) {
  // Three configurations rotating through 2 PFUs inside a hot loop: every
  // iteration reconfigures. The same loop expressed as plain ALU ops is
  // faster - the Section 4 result that motivates the selective algorithm.
  ExtInstTable table;
  for (int v = 0; v < 3; ++v) {
    table.intern(
        ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0,
                        .imm = static_cast<std::int32_t>(v + 1)},
                       {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  }
  const Program ext_version = assemble(R"(
        li $t0, 3
        li $t1, 5
        li $s0, 500
  loop: ext $t2, $t0, $t1, 0
        ext $t3, $t0, $t1, 1
        ext $t4, $t0, $t1, 2
        addu $v0, $t2, $t3
        addu $v0, $v0, $t4
        sw $v0, 0($sp)
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  const Program plain_version = assemble(R"(
        li $t0, 3
        li $t1, 5
        li $s0, 500
  loop: sll $t2, $t0, 1
        addu $t2, $t2, $t1
        sll $t3, $t0, 2
        addu $t3, $t3, $t1
        sll $t4, $t0, 3
        addu $t4, $t4, $t1
        addu $v0, $t2, $t3
        addu $v0, $v0, $t4
        sw $v0, 0($sp)
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig cfg = base_machine();
  cfg.pfu = {.count = 2, .reconfig_latency = 10};
  const SimStats thrash = simulate({.program = &ext_version, .ext_table = &table, .machine = cfg});
  const SimStats plain = simulate({.program = &plain_version, .machine = base_machine()});
  EXPECT_GT(thrash.pfu.reconfigurations, 1000u);  // ~3 per iteration
  EXPECT_GT(thrash.cycles, plain.cycles);
}

TEST(Timing, MorePfusRemoveThrashing) {
  ExtInstTable table;
  for (int v = 0; v < 3; ++v) {
    table.intern(
        ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0,
                        .imm = static_cast<std::int32_t>(v + 1)},
                       {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  }
  const Program p = assemble(R"(
        li $t0, 3
        li $t1, 5
        li $s0, 500
  loop: ext $t2, $t0, $t1, 0
        ext $t3, $t0, $t1, 1
        ext $t4, $t0, $t1, 2
        addu $v0, $t2, $t3
        addu $v0, $v0, $t4
        sw $v0, 0($sp)
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig two = base_machine();
  two.pfu = {.count = 2, .reconfig_latency = 10};
  MachineConfig four = base_machine();
  four.pfu = {.count = 4, .reconfig_latency = 10};
  const SimStats st2 = simulate({.program = &p, .ext_table = &table, .machine = two});
  const SimStats st4 = simulate({.program = &p, .ext_table = &table, .machine = four});
  EXPECT_LT(st4.cycles, st2.cycles);
  EXPECT_EQ(st4.pfu.reconfigurations, 3u);  // one load per configuration
}

TEST(Timing, ExtSpeedsUpDependentChains) {
  // End-to-end: select + rewrite a dependent-chain kernel and check the
  // rewritten program needs fewer cycles on a 2-PFU machine.
  const Program p = assemble(R"(
        li $t1, 100
        li $t3, 3
        li $s0, 2000
  loop: sll $t5, $t3, 4
        addu $t6, $t5, $t1
        sll $t7, $t6, 1
        xori $t7, $t7, 0x55
        sw  $t7, 0($sp)
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  const AnalyzedProgram ap = analyze_program(p, 1u << 22);
  SelectPolicy policy;
  policy.num_pfus = 2;
  Selection sel = select_selective(ap, policy);
  ASSERT_FALSE(sel.apps.empty());
  const RewriteResult rr = rewrite_program(p, sel.apps);

  MachineConfig cfg = base_machine();
  cfg.pfu = {.count = 2, .reconfig_latency = 10};
  const SimStats before = simulate({.program = &p, .machine = base_machine()});
  const SimStats after = simulate({.program = &rr.program, .ext_table = &sel.table, .machine = cfg});
  EXPECT_LT(after.cycles, before.cycles);
}

TEST(Timing, ThrowsOnCycleBound) {
  const Program p = assemble("loop: j loop");
  EXPECT_THROW(simulate({.program = &p, .machine = base_machine(), .max_cycles = 1000}), SimError);
}

TEST(Timing, EmptyProgramCompletes) {
  const Program p = assemble("halt");
  const SimStats st = simulate({.program = &p, .machine = base_machine()});
  EXPECT_EQ(st.committed, 1u);
}

}  // namespace
}  // namespace t1000

namespace t1000 {
namespace {

TEST(Timing, MultiCycleExtChargesDeepChains) {
  // A 6-op add chain maps to 6 LUT levels -> 2 cycles at 3 levels/cycle,
  // 6 cycles at 1 level/cycle. The dependent EXT chain exposes the latency.
  ExtInstTable table;
  std::vector<MicroOp> uops;
  for (int i = 0; i < 6; ++i) {
    uops.push_back({.op = Opcode::kAddu,
                    .dst = static_cast<std::int8_t>(2 + i),
                    .a = static_cast<std::int8_t>(i == 0 ? 0 : 1 + i),
                    .b = 1});
  }
  table.intern(ExtInstDef(2, uops));
  const Program p = assemble(R"(
        li $t0, 1
        li $s0, 1000
  loop: ext $t0, $t0, $t0, 0   # dependent chain across iterations
        andi $t0, $t0, 0xFF
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig single;
  single.pfu = {.count = 1, .reconfig_latency = 10};
  MachineConfig depth = single;
  depth.pfu.multi_cycle_ext = true;
  MachineConfig strict = depth;
  strict.pfu.levels_per_cycle = 1;
  const SimStats a = simulate({.program = &p, .ext_table = &table, .machine = single});
  const SimStats b = simulate({.program = &p, .ext_table = &table, .machine = depth});
  const SimStats c = simulate({.program = &p, .ext_table = &table, .machine = strict});
  EXPECT_GT(b.cycles, a.cycles);
  EXPECT_GT(c.cycles, b.cycles);
  // ~6 cycles/iteration of extra latency at 1 level/cycle.
  EXPECT_GT(c.cycles, a.cycles + 4000);
}

TEST(Timing, MultiCycleExtLeavesShallowChainsAlone) {
  ExtInstTable table;
  table.intern(ExtInstDef(2, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 1},
                              {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1}}));
  const Program p = assemble(R"(
        li $t0, 1
        li $t1, 2
        li $s0, 500
  loop: ext $t2, $t0, $t1, 0
        sw $t2, 0($sp)
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
  )");
  MachineConfig single;
  single.pfu = {.count = 1, .reconfig_latency = 10};
  MachineConfig depth = single;
  depth.pfu.multi_cycle_ext = true;
  const SimStats a = simulate({.program = &p, .ext_table = &table, .machine = single});
  const SimStats b = simulate({.program = &p, .ext_table = &table, .machine = depth});
  EXPECT_EQ(a.cycles, b.cycles);  // sll is wiring, addu is 1 level -> 1 cycle
}

}  // namespace
}  // namespace t1000
