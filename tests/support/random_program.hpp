// Seeded random-program generator shared by the fuzz batteries.
//
// Produces verifier-legal programs from a seeded RNG: random basic blocks
// of ALU/shift/immediate/memory work stitched together with forward-only
// control flow (termination by construction), plus one bounded backward
// countdown loop, `halt` at the end, and 256 bytes of zeroed data backing
// the memory traffic. The uop-interpreter differential battery
// (tests/sim/ucode_fuzz_test.cpp) executes these programs step-for-step;
// the translation-validator battery (tests/analysis/translation_fuzz_test
// .cpp) pushes them through extract -> select -> rewrite at randomized
// candidate shapes and proves every rewrite semantics-preserving.
//
// Every consumer tags failures with the generating seed; to reproduce,
// feed the seed back to build_random_program() under a debugger.
#pragma once

#include <cstdint>
#include <random>

#include "asmkit/program.hpp"
#include "sim/executor.hpp"

namespace t1000 {
namespace fuzz {

// Registers the generator allocates: $t0..$t7 scratch plus $zero as an
// occasional destination (architectural no-op — every consumer must agree
// on it too). $a0 (memory base) and $s0 (loop counter) are excluded from
// destinations so the generated control flow stays well-defined.
constexpr Reg kScratch[] = {8, 9, 10, 11, 12, 13, 14, 15, 0};

inline Reg pick_reg(std::mt19937& rng) {
  return kScratch[rng() % (sizeof kScratch / sizeof kScratch[0])];
}

// One random non-control instruction. Memory operations stay inside the
// 256-byte data segment through $a0 (loaded with kDataBase and never
// clobbered).
inline Instruction random_straightline(std::mt19937& rng) {
  switch (rng() % 8) {
    case 0:
      return make_r(static_cast<Opcode>(rng() % 12), pick_reg(rng),
                    pick_reg(rng), pick_reg(rng));
    case 1: {
      const Opcode shifts[] = {Opcode::kSll, Opcode::kSrl, Opcode::kSra};
      // Shift amounts beyond 31 exercise the decoder's pre-masking.
      return make_shift(shifts[rng() % 3], pick_reg(rng), pick_reg(rng),
                        static_cast<int>(rng() % 64));
    }
    case 2: {
      const Opcode imms[] = {Opcode::kAddiu, Opcode::kAndi, Opcode::kOri,
                             Opcode::kXori, Opcode::kSlti, Opcode::kSltiu};
      return make_imm(imms[rng() % 6], pick_reg(rng), pick_reg(rng),
                      static_cast<std::int32_t>(rng() % 0x10000) - 0x8000);
    }
    case 3:
      return make_lui(pick_reg(rng),
                      static_cast<std::int32_t>(rng() % 0x10000));
    case 4: {
      const Opcode loads[] = {Opcode::kLw, Opcode::kLh, Opcode::kLhu,
                              Opcode::kLb, Opcode::kLbu};
      const int pick = static_cast<int>(rng() % 5);
      const int align = pick == 0 ? 4 : pick <= 2 ? 2 : 1;
      const std::int32_t disp =
          static_cast<std::int32_t>(rng() % (256 / align)) * align;
      return make_mem(loads[pick], pick_reg(rng), /*base=*/4, disp);
    }
    case 5: {
      const Opcode stores[] = {Opcode::kSw, Opcode::kSh, Opcode::kSb};
      const int pick = static_cast<int>(rng() % 3);
      const int align = pick == 0 ? 4 : pick == 1 ? 2 : 1;
      const std::int32_t disp =
          static_cast<std::int32_t>(rng() % (256 / align)) * align;
      return make_mem(stores[pick], pick_reg(rng), /*base=*/4, disp);
    }
    case 6:
      return make_nop();
    default:
      return make_r(Opcode::kMul, pick_reg(rng), pick_reg(rng),
                    pick_reg(rng));
  }
}

// A random program: straight-line filler broken by forward-only branches
// (every control target is strictly greater than the branch's own index,
// so the program terminates no matter what the data does), one bounded
// countdown loop in the middle, `halt` at the end.
inline Program build_random_program(std::uint32_t seed) {
  std::mt19937 rng(seed);
  Program p;
  p.data.assign(256, 0);

  const int body = 24 + static_cast<int>(rng() % 40);
  // Prologue: $a0 <- kDataBase, $s0 <- small loop count. The loop header
  // index is known up front: two prologue instructions, then `body`
  // random ones, then the loop.
  p.text.push_back(make_lui(/*rd=*/4, kDataBase >> 16));
  p.text.push_back(
      make_imm(Opcode::kAddiu, /*rd=*/16, 0, 3 + (rng() % 5)));

  for (int i = 0; i < body; ++i) {
    // ~1 in 6 instructions is a forward branch over a small random gap.
    if (rng() % 6 == 0) {
      const auto here = static_cast<std::int32_t>(p.text.size());
      const std::int32_t target =
          here + 1 + static_cast<std::int32_t>(rng() % 4);
      switch (rng() % 4) {
        case 0:
          p.text.push_back(make_branch2(Opcode::kBeq, pick_reg(rng),
                                        pick_reg(rng), target));
          break;
        case 1:
          p.text.push_back(make_branch2(Opcode::kBne, pick_reg(rng),
                                        pick_reg(rng), target));
          break;
        case 2:
          p.text.push_back(
              make_branch1(Opcode::kBgtz, pick_reg(rng), target));
          break;
        default:
          p.text.push_back(make_jump(Opcode::kJ, target));
          break;
      }
    } else {
      p.text.push_back(random_straightline(rng));
    }
  }
  // Pad past any forward target that may point into [size, size+4).
  for (int i = 0; i < 4; ++i) p.text.push_back(random_straightline(rng));

  // The bounded loop: body of random work, then $s0-- / bgtz back up.
  const auto loop_head = static_cast<std::int32_t>(p.text.size());
  const int loop_body = 2 + static_cast<int>(rng() % 6);
  for (int i = 0; i < loop_body; ++i) {
    p.text.push_back(random_straightline(rng));
  }
  p.text.push_back(make_imm(Opcode::kAddiu, /*rd=*/16, /*rs=*/16, -1));
  p.text.push_back(make_branch1(Opcode::kBgtz, /*rs=*/16, loop_head));
  p.text.push_back(make_halt());
  return p;
}

}  // namespace fuzz
}  // namespace t1000
