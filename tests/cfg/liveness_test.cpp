#include "cfg/liveness.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"

namespace t1000 {
namespace {

constexpr Reg kT0 = 8;
constexpr Reg kT1 = 9;
constexpr Reg kT2 = 10;

TEST(Liveness, ValueDeadAfterLastUse) {
  const Program p = assemble(R"(
        li $t0, 1          # 0
        addu $t1, $t0, $t0 # 1: last use of $t0
        addu $t2, $t1, $t1 # 2
        beq $t2, $zero, a  # 3  (ends block so $t1/$t0 not re-read)
  a:    halt
  )");
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  EXPECT_TRUE(lv.live_after(p, cfg, 0).test(kT0));
  EXPECT_FALSE(lv.live_after(p, cfg, 1).test(kT0));
  EXPECT_TRUE(lv.live_after(p, cfg, 1).test(kT1));
  EXPECT_FALSE(lv.live_after(p, cfg, 2).test(kT1));
}

TEST(Liveness, LoopCarriedValueStaysLive) {
  const Program p = assemble(R"(
        li $t0, 0
        li $t1, 10
  loop: addiu $t0, $t0, 1    # $t0 live around the back edge
        bne $t0, $t1, loop
        halt
  )");
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  const int loop_block = cfg.block_of(2);
  EXPECT_TRUE(lv.live_in[static_cast<std::size_t>(loop_block)].test(kT0));
  EXPECT_TRUE(lv.live_in[static_cast<std::size_t>(loop_block)].test(kT1));
  EXPECT_TRUE(lv.live_out[static_cast<std::size_t>(loop_block)].test(kT0));
}

TEST(Liveness, BranchOperandsAreUsed) {
  const Program p = assemble(R"(
        li $t2, 3
        bne $t2, $zero, a
  a:    halt
  )");
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  EXPECT_TRUE(lv.live_after(p, cfg, 0).test(kT2));
}

TEST(Liveness, HaltKeepsOnlyResultRegistersLive) {
  const Program p = assemble(R"(
        li $t0, 1
        halt
  )");
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  const RegSet at_exit = lv.live_after(p, cfg, 0);
  EXPECT_FALSE(at_exit.test(kT0));
  EXPECT_TRUE(at_exit.test(kRegV0));
  EXPECT_TRUE(at_exit.test(kRegV0 + 1));
}

TEST(Liveness, ReturnKeepsAbiRegistersLive) {
  const Program p = assemble(R"(
  f:    li $t0, 1
        li $s0, 2
        jr $ra
  )");
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  const RegSet after_t0 = lv.live_after(p, cfg, 0);
  EXPECT_FALSE(after_t0.test(kT0));   // temporaries die at return
  const RegSet after_s0 = lv.live_after(p, cfg, 1);
  EXPECT_TRUE(after_s0.test(kRegS0));  // callee-saved survive
  EXPECT_TRUE(after_s0.test(kRegSp));
  EXPECT_TRUE(after_s0.test(kRegRa));
}

TEST(Liveness, CallsUseEverything) {
  const Program p = assemble(R"(
  main: li $t0, 5            # 0: would be dead without the call
        jal f                # 1
        halt
  f:    jr $ra
  )");
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  EXPECT_TRUE(lv.live_after(p, cfg, 0).test(kT0));
}

TEST(Liveness, ZeroRegisterNeverLive) {
  const Program p = assemble(R"(
  loop: addu $t0, $zero, $zero
        bne $t0, $zero, loop
        halt
  )");
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  for (int b = 0; b < cfg.num_blocks(); ++b) {
    EXPECT_FALSE(lv.live_in[static_cast<std::size_t>(b)].test(kRegZero));
    EXPECT_FALSE(lv.live_out[static_cast<std::size_t>(b)].test(kRegZero));
  }
}

TEST(Liveness, RedefinitionKillsLiveness) {
  const Program p = assemble(R"(
        li $t0, 1             # 0: this $t0 is dead (overwritten at 1)
        li $t0, 2             # 1
        addu $t1, $t0, $t0    # 2
        beq $t1, $zero, a     # 3
  a:    halt
  )");
  const Cfg cfg = Cfg::build(p);
  const Liveness lv = compute_liveness(p, cfg);
  // After inst 0, $t0 is not live: inst 1 redefines before any use.
  EXPECT_FALSE(lv.live_after(p, cfg, 0).test(kT0));
  EXPECT_TRUE(lv.live_after(p, cfg, 1).test(kT0));
}

}  // namespace
}  // namespace t1000
