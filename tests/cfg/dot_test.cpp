#include "cfg/dot.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"

namespace t1000 {
namespace {

TEST(Dot, ContainsBlocksEdgesAndEntry) {
  const Program p = assemble(R"(
        li $t0, 5
  loop: addiu $t0, $t0, -1
        bgtz $t0, loop
        halt
  )");
  const Cfg cfg = Cfg::build(p);
  const std::string dot = cfg_to_dot(p, cfg);
  EXPECT_NE(dot.find("digraph cfg"), std::string::npos);
  EXPECT_NE(dot.find("b0"), std::string::npos);
  EXPECT_NE(dot.find("entry -> b"), std::string::npos);
  // The loop back edge is highlighted.
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  // Loop blocks get a loop annotation and a fill tint.
  EXPECT_NE(dot.find("loop0"), std::string::npos);
  EXPECT_NE(dot.find("#fff3e0"), std::string::npos);
}

TEST(Dot, InstructionTextAppearsAndElides) {
  std::string src = "top:\n";
  for (int i = 0; i < 20; ++i) src += "  addiu $t0, $t0, 1\n";
  src += "  halt\n";
  const Program p = assemble(src);
  const Cfg cfg = Cfg::build(p);
  DotOptions opt;
  opt.max_instructions_per_block = 4;
  const std::string dot = cfg_to_dot(p, cfg, opt);
  EXPECT_NE(dot.find("addiu $t0, $t0, 1"), std::string::npos);
  EXPECT_NE(dot.find("..."), std::string::npos);

  DotOptions bare;
  bare.show_instructions = false;
  const std::string plain = cfg_to_dot(p, cfg, bare);
  EXPECT_EQ(plain.find("addiu"), std::string::npos);
}

TEST(Dot, EmptyProgramStillValid) {
  const Program p = assemble("");
  const std::string dot = cfg_to_dot(p, Cfg::build(p));
  EXPECT_NE(dot.find("digraph cfg"), std::string::npos);
}

}  // namespace
}  // namespace t1000
