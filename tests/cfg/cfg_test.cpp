#include "cfg/cfg.hpp"

#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"

namespace t1000 {
namespace {

TEST(Cfg, StraightLineIsOneBlock) {
  const Program p = assemble(R"(
      addiu $t0, $t0, 1
      addiu $t0, $t0, 2
      halt
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.num_blocks(), 1);
  EXPECT_EQ(cfg.block(0).first, 0);
  EXPECT_EQ(cfg.block(0).last, 2);
  EXPECT_TRUE(cfg.block(0).succs.empty());
  EXPECT_TRUE(cfg.loops().empty());
}

TEST(Cfg, BranchSplitsBlocks) {
  const Program p = assemble(R"(
        beq $t0, $t1, skip     # block 0: [0]
        addiu $t0, $t0, 1      # block 1: [1]
  skip: halt                   # block 2: [2]
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.num_blocks(), 3);
  EXPECT_EQ(cfg.block(0).succs, (std::vector<int>{1, 2}));
  EXPECT_EQ(cfg.block(1).succs, (std::vector<int>{2}));
  EXPECT_TRUE(cfg.block(2).succs.empty());
  EXPECT_EQ(cfg.block_of(0), 0);
  EXPECT_EQ(cfg.block_of(1), 1);
  EXPECT_EQ(cfg.block_of(2), 2);
}

TEST(Cfg, BranchToFallthroughDeduplicated) {
  const Program p = assemble(R"(
        beq $t0, $t1, next
  next: halt
  )");
  const Cfg cfg = Cfg::build(p);
  EXPECT_EQ(cfg.block(0).succs, (std::vector<int>{1}));
}

TEST(Cfg, SimpleLoopDetected) {
  const Program p = assemble(R"(
        li $t0, 0              # block 0
  loop: addiu $t0, $t0, 1      # block 1
        bne $t0, $t1, loop
        halt                   # block 2
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.loops().size(), 1u);
  const Loop& l = cfg.loops()[0];
  EXPECT_EQ(l.header, cfg.block_of(1));
  EXPECT_EQ(l.blocks, (std::vector<int>{cfg.block_of(1)}));
  EXPECT_EQ(l.depth, 1);
  EXPECT_EQ(cfg.innermost_loop_of(cfg.block_of(1)), 0);
  EXPECT_EQ(cfg.innermost_loop_of(cfg.block_of(0)), -1);
}

TEST(Cfg, NestedLoopsHaveDepths) {
  const Program p = assemble(R"(
        li $t0, 0
  outer: li $t1, 0
  inner: addiu $t1, $t1, 1
        bne $t1, $t3, inner
        addiu $t0, $t0, 1
        bne $t0, $t2, outer
        halt
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.loops().size(), 2u);
  const Loop* outer = nullptr;
  const Loop* inner = nullptr;
  for (const Loop& l : cfg.loops()) {
    (l.depth == 1 ? outer : inner) = &l;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->depth, 2);
  EXPECT_EQ(&cfg.loops()[static_cast<std::size_t>(inner->parent)], outer);
  EXPECT_GT(outer->blocks.size(), inner->blocks.size());
  // The inner header's innermost loop is the inner loop.
  const int inner_header_loop = cfg.innermost_loop_of(inner->header);
  EXPECT_EQ(cfg.loops()[static_cast<std::size_t>(inner_header_loop)].depth, 2);
}

TEST(Cfg, MultiBlockLoopBody) {
  const Program p = assemble(R"(
  loop: blez $t0, else
        addiu $t1, $t1, 1
        j tail
  else: addiu $t1, $t1, 2
  tail: addiu $t0, $t0, -1
        bne $t0, $zero, loop
        halt
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.loops().size(), 1u);
  EXPECT_EQ(cfg.loops()[0].blocks.size(), 4u);  // header, then, else, tail
}

TEST(Cfg, DominatorsOfDiamond) {
  const Program p = assemble(R"(
        beq $t0, $zero, right  # 0
        addiu $t1, $t1, 1      # 1 (left)
        j join                 # (same block as 1)
  right: addiu $t1, $t1, 2     # 2
  join: halt                   # 3
  )");
  const Cfg cfg = Cfg::build(p);
  const int b0 = cfg.block_of(0);
  const int join = cfg.block_of(p.text_symbols.at("join"));
  const int left = cfg.block_of(1);
  const int right = cfg.block_of(p.text_symbols.at("right"));
  EXPECT_TRUE(cfg.dominates(b0, left));
  EXPECT_TRUE(cfg.dominates(b0, right));
  EXPECT_TRUE(cfg.dominates(b0, join));
  EXPECT_FALSE(cfg.dominates(left, join));
  EXPECT_FALSE(cfg.dominates(right, join));
  EXPECT_EQ(cfg.idom(join), b0);
  EXPECT_TRUE(cfg.dominates(join, join));
}

TEST(Cfg, CallsDoNotCreateLoopEdges) {
  // A function called from inside a loop: the call must not make the callee
  // part of the loop, and the callee's `jr` must not create wild edges.
  const Program p = assemble(R"(
  main: li $t0, 0
  loop: jal helper
        addiu $t0, $t0, 1
        bne $t0, $t1, loop
        halt
  helper: addiu $v0, $zero, 1
        jr $ra
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.loops().size(), 1u);
  const int helper_block = cfg.block_of(p.text_symbols.at("helper"));
  for (const int b : cfg.loops()[0].blocks) EXPECT_NE(b, helper_block);
  // jal's successor is the fall-through, not the callee.
  const int call_block = cfg.block_of(1);
  EXPECT_EQ(cfg.block(call_block).succs.size(), 1u);
  EXPECT_EQ(cfg.block(call_block).succs[0], cfg.block_of(2));
}

TEST(Cfg, EntryIsMainSymbol) {
  const Program p = assemble(R"(
  helper: jr $ra
  main: halt
  )");
  const Cfg cfg = Cfg::build(p);
  EXPECT_EQ(cfg.entry(), cfg.block_of(p.text_symbols.at("main")));
}

TEST(Cfg, FunctionBodiesGetDominators) {
  // The callee is reachable only via jal; it must still get dominator info
  // so loops inside functions are found.
  const Program p = assemble(R"(
  main: jal f
        halt
  f:    li $t0, 0
  floop: addiu $t0, $t0, 1
        bne $t0, $t1, floop
        jr $ra
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.loops().size(), 1u);
  EXPECT_EQ(cfg.loops()[0].header,
            cfg.block_of(p.text_symbols.at("floop")));
}

TEST(Cfg, SelfLoopBlock) {
  const Program p = assemble(R"(
  spin: bne $t0, $zero, spin
        halt
  )");
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.loops().size(), 1u);
  EXPECT_EQ(cfg.loops()[0].blocks.size(), 1u);
}

TEST(Cfg, BranchToCleanHaltPcHasNoSuccessorEdge) {
  // Target == size is the clean-halt pc (the rewriter maps deleted tail
  // positions there). It must not become a leader or an edge.
  Program p = assemble(R"(
        addiu $t0, $t0, 1
        beq $t0, $zero, out
  out:  halt
  )");
  p.text[1].imm = p.size();
  const Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.num_blocks(), 2);
  // The branch block keeps only its fall-through successor.
  const BasicBlock& b0 = cfg.block(cfg.block_of(0));
  ASSERT_EQ(b0.succs.size(), 1u);
  EXPECT_EQ(b0.succs[0], cfg.block_of(2));
}

TEST(Cfg, EmptyProgram) {
  const Program p = assemble("");
  const Cfg cfg = Cfg::build(p);
  EXPECT_EQ(cfg.num_blocks(), 0);
  EXPECT_TRUE(cfg.loops().empty());
}

}  // namespace
}  // namespace t1000
