#include "isa/encoding.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "isa/instruction.hpp"

namespace t1000 {
namespace {

void expect_roundtrip(const Instruction& ins, std::uint32_t index = 5) {
  const std::uint32_t word = encode(ins, index);
  const Instruction back = decode(word, index);
  EXPECT_EQ(back, ins) << to_string(ins) << " vs " << to_string(back);
}

TEST(Encoding, RoundTripAlu3) {
  for (const Opcode op : {Opcode::kAddu, Opcode::kSubu, Opcode::kAnd,
                          Opcode::kOr, Opcode::kXor, Opcode::kNor,
                          Opcode::kSlt, Opcode::kSltu, Opcode::kSllv,
                          Opcode::kSrlv, Opcode::kSrav, Opcode::kMul}) {
    expect_roundtrip(make_r(op, 7, 13, 21));
  }
}

TEST(Encoding, RoundTripShiftImm) {
  for (const Opcode op : {Opcode::kSll, Opcode::kSrl, Opcode::kSra}) {
    for (const int sh : {1, 15, 31}) {
      expect_roundtrip(make_shift(op, 9, 10, sh));
    }
  }
}

TEST(Encoding, RoundTripAluImm) {
  expect_roundtrip(make_imm(Opcode::kAddiu, 4, 5, -32768));
  expect_roundtrip(make_imm(Opcode::kAddiu, 4, 5, 32767));
  expect_roundtrip(make_imm(Opcode::kSlti, 4, 5, -7));
  expect_roundtrip(make_imm(Opcode::kSltiu, 4, 5, 100));
  expect_roundtrip(make_imm(Opcode::kAndi, 4, 5, 0xFFFF));
  expect_roundtrip(make_imm(Opcode::kOri, 4, 5, 0x8000));
  expect_roundtrip(make_imm(Opcode::kXori, 4, 5, 0x1234));
  expect_roundtrip(make_lui(4, 0xABCD));
}

TEST(Encoding, RoundTripMemory) {
  for (const Opcode op : {Opcode::kLw, Opcode::kLh, Opcode::kLhu, Opcode::kLb,
                          Opcode::kLbu, Opcode::kSw, Opcode::kSh, Opcode::kSb}) {
    expect_roundtrip(make_mem(op, 8, 29, -64));
    expect_roundtrip(make_mem(op, 8, 29, 32000));
  }
}

TEST(Encoding, RoundTripBranches) {
  // Forward and backward targets around index 100.
  for (const Opcode op : {Opcode::kBeq, Opcode::kBne}) {
    expect_roundtrip(make_branch2(op, 3, 4, 150), 100);
    expect_roundtrip(make_branch2(op, 3, 4, 10), 100);
    expect_roundtrip(make_branch2(op, 3, 4, 101), 100);  // offset 0
  }
  for (const Opcode op :
       {Opcode::kBlez, Opcode::kBgtz, Opcode::kBltz, Opcode::kBgez}) {
    expect_roundtrip(make_branch1(op, 3, 150), 100);
    expect_roundtrip(make_branch1(op, 3, 10), 100);
  }
}

TEST(Encoding, RoundTripJumps) {
  expect_roundtrip(make_jump(Opcode::kJ, 0));
  expect_roundtrip(make_jump(Opcode::kJ, (1 << 26) - 1));
  expect_roundtrip(make_jump(Opcode::kJal, 12345));
  expect_roundtrip(make_jr(31));
  expect_roundtrip(make_jalr(31, 9));
}

TEST(Encoding, RoundTripSpecials) {
  expect_roundtrip(make_nop());
  expect_roundtrip(make_halt());
  expect_roundtrip(make_ext(8, 9, 10, 0));
  expect_roundtrip(make_ext(8, 9, 10, (1u << kConfBits) - 1));
}

TEST(Encoding, NopEncodesAsZero) {
  EXPECT_EQ(encode(make_nop(), 0), 0u);
  EXPECT_EQ(decode(0, 0).op, Opcode::kNop);
}

TEST(Encoding, RejectsOutOfRangeFields) {
  EXPECT_THROW(encode(make_imm(Opcode::kAddiu, 1, 2, 40000), 0), EncodingError);
  EXPECT_THROW(encode(make_imm(Opcode::kAndi, 1, 2, -1), 0), EncodingError);
  EXPECT_THROW(encode(make_imm(Opcode::kAndi, 1, 2, 0x10000), 0), EncodingError);
  EXPECT_THROW(encode(make_mem(Opcode::kLw, 1, 2, 0x8000), 0), EncodingError);
  EXPECT_THROW(encode(make_branch2(Opcode::kBeq, 1, 2, 100000), 0),
               EncodingError);
  EXPECT_THROW(encode(make_jump(Opcode::kJ, 1 << 26), 0), EncodingError);
  EXPECT_THROW(encode(make_ext(1, 2, 3, 1u << kConfBits), 0), EncodingError);
  EXPECT_THROW(encode(make_shift(Opcode::kSll, 1, 2, 32), 0), EncodingError);
}

TEST(Encoding, RejectsUnknownWords) {
  EXPECT_THROW(decode(0x3Fu << 26, 0), EncodingError);          // opcode 0x3F
  EXPECT_THROW(decode(0x3Au, 0), EncodingError);                // bad funct
  EXPECT_THROW(decode((0x01u << 26) | (5u << 16), 0), EncodingError);  // REGIMM
}

// Exhaustive-ish roundtrip sweep over register fields.
class EncodingRegSweep : public ::testing::TestWithParam<int> {};

TEST_P(EncodingRegSweep, AllRegistersRoundTrip) {
  const Reg r = static_cast<Reg>(GetParam());
  expect_roundtrip(make_r(Opcode::kXor, r, r, r));
  expect_roundtrip(make_mem(Opcode::kLw, r, r, 4));
  expect_roundtrip(make_mem(Opcode::kSw, r, r, 4));
  if (r != 0) {
    // rd=0 shift would decode as nop-adjacent; sll $zero is legal but the
    // canonical zero word is reserved for nop.
    expect_roundtrip(make_shift(Opcode::kSll, r, r, 3));
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegs, EncodingRegSweep, ::testing::Range(0, 32));

}  // namespace
}  // namespace t1000
