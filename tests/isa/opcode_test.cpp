#include "isa/opcode.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

TEST(OpcodeInfo, MnemonicsAreUniqueAndNonEmpty) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const Opcode a = static_cast<Opcode>(i);
    EXPECT_FALSE(mnemonic(a).empty());
    for (int j = i + 1; j < kNumOpcodes; ++j) {
      EXPECT_NE(mnemonic(a), mnemonic(static_cast<Opcode>(j)));
    }
  }
}

TEST(OpcodeInfo, ParseMnemonicRoundTrips) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    EXPECT_EQ(parse_mnemonic(mnemonic(op)), op);
  }
}

TEST(OpcodeInfo, ParseMnemonicRejectsUnknown) {
  EXPECT_EQ(parse_mnemonic("bogus"), Opcode::kNumOpcodes);
  EXPECT_EQ(parse_mnemonic(""), Opcode::kNumOpcodes);
  EXPECT_EQ(parse_mnemonic("ADDU"), Opcode::kNumOpcodes);  // case-sensitive
}

TEST(OpcodeInfo, CandidatesAreSingleCycleAluOps) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    if (!is_ext_candidate(op)) continue;
    EXPECT_EQ(fu_class(op), FuClass::kIntAlu) << mnemonic(op);
    EXPECT_EQ(base_latency(op), 1) << mnemonic(op);
    EXPECT_FALSE(is_mem(op)) << mnemonic(op);
    EXPECT_FALSE(is_control(op)) << mnemonic(op);
  }
}

TEST(OpcodeInfo, ClassPredicates) {
  EXPECT_TRUE(is_load(Opcode::kLw));
  EXPECT_TRUE(is_load(Opcode::kLbu));
  EXPECT_FALSE(is_load(Opcode::kSw));
  EXPECT_TRUE(is_store(Opcode::kSh));
  EXPECT_TRUE(is_mem(Opcode::kLb));
  EXPECT_TRUE(is_mem(Opcode::kSb));
  EXPECT_FALSE(is_mem(Opcode::kAddu));
  EXPECT_TRUE(is_branch(Opcode::kBeq));
  EXPECT_TRUE(is_branch(Opcode::kBgez));
  EXPECT_FALSE(is_branch(Opcode::kJ));
  EXPECT_TRUE(is_jump(Opcode::kJ));
  EXPECT_TRUE(is_jump(Opcode::kJalr));
  EXPECT_TRUE(is_control(Opcode::kHalt));
  EXPECT_FALSE(is_control(Opcode::kExt));
}

TEST(OpcodeInfo, MulIsMultiCycle) {
  EXPECT_EQ(base_latency(Opcode::kMul), 3);
  EXPECT_EQ(fu_class(Opcode::kMul), FuClass::kIntMul);
  EXPECT_FALSE(is_ext_candidate(Opcode::kMul));
}

TEST(OpcodeInfo, VariableShiftsAreNotCandidates) {
  EXPECT_FALSE(is_ext_candidate(Opcode::kSllv));
  EXPECT_FALSE(is_ext_candidate(Opcode::kSrlv));
  EXPECT_FALSE(is_ext_candidate(Opcode::kSrav));
  EXPECT_TRUE(is_ext_candidate(Opcode::kSll));
  EXPECT_TRUE(is_ext_candidate(Opcode::kSra));
}

TEST(OpcodeInfo, ExtUsesPfu) {
  EXPECT_EQ(fu_class(Opcode::kExt), FuClass::kPfu);
  EXPECT_EQ(base_latency(Opcode::kExt), 1);
}

}  // namespace
}  // namespace t1000
