#include "isa/instruction.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

TEST(Instruction, SrcRegsAlu3) {
  const Instruction i = make_r(Opcode::kAddu, 2, 3, 4);
  const SrcRegs s = src_regs(i);
  ASSERT_EQ(s.count, 2);
  EXPECT_EQ(s.reg[0], 3);
  EXPECT_EQ(s.reg[1], 4);
  EXPECT_EQ(dst_reg(i), 2);
}

TEST(Instruction, SrcRegsShiftAndImm) {
  EXPECT_EQ(src_regs(make_shift(Opcode::kSll, 2, 3, 4)).count, 1);
  EXPECT_EQ(src_regs(make_imm(Opcode::kAddiu, 2, 3, -1)).count, 1);
  EXPECT_EQ(src_regs(make_lui(2, 7)).count, 0);
}

TEST(Instruction, StoreReadsBothBaseAndData) {
  const Instruction i = make_mem(Opcode::kSw, /*data=*/5, /*base=*/6, 12);
  const SrcRegs s = src_regs(i);
  ASSERT_EQ(s.count, 2);
  EXPECT_EQ(s.reg[0], 6);  // base
  EXPECT_EQ(s.reg[1], 5);  // data
  EXPECT_FALSE(dst_reg(i).has_value());
}

TEST(Instruction, LoadWritesData) {
  const Instruction i = make_mem(Opcode::kLw, 5, 6, 12);
  EXPECT_EQ(dst_reg(i), 5);
  ASSERT_EQ(src_regs(i).count, 1);
  EXPECT_EQ(src_regs(i).reg[0], 6);
}

TEST(Instruction, WritesToZeroAreDiscarded) {
  EXPECT_FALSE(dst_reg(make_r(Opcode::kAddu, 0, 1, 2)).has_value());
  EXPECT_FALSE(dst_reg(make_imm(Opcode::kOri, 0, 1, 5)).has_value());
}

TEST(Instruction, JalWritesRa) {
  EXPECT_EQ(dst_reg(make_jump(Opcode::kJal, 7)), kRegRa);
  EXPECT_FALSE(dst_reg(make_jump(Opcode::kJ, 7)).has_value());
}

TEST(Instruction, JalrWritesLinkReadsTarget) {
  const Instruction i = make_jalr(31, 9);
  EXPECT_EQ(dst_reg(i), 31);
  ASSERT_EQ(src_regs(i).count, 1);
  EXPECT_EQ(src_regs(i).reg[0], 9);
}

TEST(Instruction, BranchesHaveNoDst) {
  EXPECT_FALSE(dst_reg(make_branch2(Opcode::kBeq, 1, 2, 0)).has_value());
  EXPECT_FALSE(dst_reg(make_branch1(Opcode::kBltz, 1, 0)).has_value());
}

TEST(Instruction, ExtReadsTwoWritesOne) {
  const Instruction i = make_ext(10, 11, 12, 3);
  EXPECT_EQ(dst_reg(i), 10);
  const SrcRegs s = src_regs(i);
  ASSERT_EQ(s.count, 2);
  EXPECT_EQ(s.reg[0], 11);
  EXPECT_EQ(s.reg[1], 12);
  EXPECT_EQ(i.conf, 3);
}

TEST(Instruction, ReadsWritesPredicates) {
  const Instruction i = make_r(Opcode::kXor, 2, 3, 4);
  EXPECT_TRUE(reads_reg(i, 3));
  EXPECT_TRUE(reads_reg(i, 4));
  EXPECT_FALSE(reads_reg(i, 2));
  EXPECT_TRUE(writes_reg(i, 2));
  EXPECT_FALSE(writes_reg(i, 3));
}

TEST(Instruction, ToStringFormats) {
  EXPECT_EQ(to_string(make_r(Opcode::kAddu, 2, 3, 4)), "addu $v0, $v1, $a0");
  EXPECT_EQ(to_string(make_shift(Opcode::kSll, 8, 9, 4)), "sll $t0, $t1, 4");
  EXPECT_EQ(to_string(make_mem(Opcode::kLw, 8, 29, -4)), "lw $t0, -4($sp)");
  EXPECT_EQ(to_string(make_mem(Opcode::kSw, 8, 29, 8)), "sw $t0, 8($sp)");
  EXPECT_EQ(to_string(make_branch2(Opcode::kBne, 8, 0, 12)),
            "bne $t0, $zero, @12");
  EXPECT_EQ(to_string(make_jump(Opcode::kJ, 3)), "j @3");
  EXPECT_EQ(to_string(make_ext(8, 9, 10, 5)), "ext $t0, $t1, $t2, conf=5");
  EXPECT_EQ(to_string(make_nop()), "nop");
  EXPECT_EQ(to_string(make_halt()), "halt");
}

}  // namespace
}  // namespace t1000
