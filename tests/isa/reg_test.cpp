#include "isa/reg.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

TEST(Reg, NamesMatchAbi) {
  EXPECT_EQ(reg_name(0), "$zero");
  EXPECT_EQ(reg_name(1), "$at");
  EXPECT_EQ(reg_name(2), "$v0");
  EXPECT_EQ(reg_name(4), "$a0");
  EXPECT_EQ(reg_name(8), "$t0");
  EXPECT_EQ(reg_name(16), "$s0");
  EXPECT_EQ(reg_name(24), "$t8");
  EXPECT_EQ(reg_name(29), "$sp");
  EXPECT_EQ(reg_name(31), "$ra");
}

TEST(Reg, ParseAbiNames) {
  for (int i = 0; i < kNumRegs; ++i) {
    EXPECT_EQ(parse_reg(reg_name(static_cast<Reg>(i))), i);
  }
}

TEST(Reg, ParseNumericForms) {
  EXPECT_EQ(parse_reg("$0"), 0);
  EXPECT_EQ(parse_reg("$31"), 31);
  EXPECT_EQ(parse_reg("r17"), 17);
  EXPECT_EQ(parse_reg("5"), 5);
}

TEST(Reg, ParseRejectsBadInput) {
  EXPECT_EQ(parse_reg(""), -1);
  EXPECT_EQ(parse_reg("$32"), -1);
  EXPECT_EQ(parse_reg("$-1"), -1);
  EXPECT_EQ(parse_reg("$zz"), -1);
  EXPECT_EQ(parse_reg("x4"), -1);
  EXPECT_EQ(parse_reg("$t00x"), -1);
  EXPECT_EQ(parse_reg("32"), -1);
}

}  // namespace
}  // namespace t1000
