#include "isa/alu.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

TEST(Alu, Arithmetic) {
  EXPECT_EQ(eval_alu(Opcode::kAddu, 3, 4), 7u);
  EXPECT_EQ(eval_alu(Opcode::kAddu, 0xFFFFFFFF, 1), 0u);  // wraps
  EXPECT_EQ(eval_alu(Opcode::kSubu, 3, 4), 0xFFFFFFFFu);
  EXPECT_EQ(eval_alu(Opcode::kMul, 7, 6), 42u);
  EXPECT_EQ(eval_alu(Opcode::kMul, 0x10000, 0x10000), 0u);  // low 32 bits
}

TEST(Alu, Logic) {
  EXPECT_EQ(eval_alu(Opcode::kAnd, 0b1100, 0b1010), 0b1000u);
  EXPECT_EQ(eval_alu(Opcode::kOr, 0b1100, 0b1010), 0b1110u);
  EXPECT_EQ(eval_alu(Opcode::kXor, 0b1100, 0b1010), 0b0110u);
  EXPECT_EQ(eval_alu(Opcode::kNor, 0, 0), 0xFFFFFFFFu);
}

TEST(Alu, Comparisons) {
  EXPECT_EQ(eval_alu(Opcode::kSlt, static_cast<std::uint32_t>(-1), 0), 1u);
  EXPECT_EQ(eval_alu(Opcode::kSlt, 0, static_cast<std::uint32_t>(-1)), 0u);
  EXPECT_EQ(eval_alu(Opcode::kSltu, static_cast<std::uint32_t>(-1), 0), 0u);
  EXPECT_EQ(eval_alu(Opcode::kSltu, 0, 1), 1u);
  EXPECT_EQ(eval_alu(Opcode::kSlt, 5, 5), 0u);
}

TEST(Alu, Shifts) {
  EXPECT_EQ(eval_alu(Opcode::kSll, 1, 31), 0x80000000u);
  EXPECT_EQ(eval_alu(Opcode::kSrl, 0x80000000u, 31), 1u);
  EXPECT_EQ(eval_alu(Opcode::kSra, 0x80000000u, 31), 0xFFFFFFFFu);
  EXPECT_EQ(eval_alu(Opcode::kSrav, 0x40000000u, 30), 1u);
  // Variable shifts use only the low 5 bits of the amount.
  EXPECT_EQ(eval_alu(Opcode::kSllv, 1, 33), 2u);
}

TEST(Alu, Lui) {
  EXPECT_EQ(eval_alu(Opcode::kLui, 0, 0x1234), 0x12340000u);
}

TEST(Alu, ImmediateExtension) {
  EXPECT_EQ(imm_extension(Opcode::kAddiu), ImmExtension::kSign);
  EXPECT_EQ(imm_extension(Opcode::kSlti), ImmExtension::kSign);
  EXPECT_EQ(imm_extension(Opcode::kAndi), ImmExtension::kZero);
  EXPECT_EQ(imm_extension(Opcode::kOri), ImmExtension::kZero);
  EXPECT_EQ(imm_extension(Opcode::kXori), ImmExtension::kZero);
  EXPECT_EQ(extend_imm(Opcode::kAddiu, -1), 0xFFFFFFFFu);
  EXPECT_EQ(extend_imm(Opcode::kAndi, -1), 0xFFFFu);
}

TEST(Alu, SignedWidth) {
  EXPECT_EQ(signed_width(0), 1);
  EXPECT_EQ(signed_width(1), 2);
  EXPECT_EQ(signed_width(3), 3);
  EXPECT_EQ(signed_width(static_cast<std::uint32_t>(-1)), 1);
  EXPECT_EQ(signed_width(static_cast<std::uint32_t>(-3)), 3);
  EXPECT_EQ(signed_width(0x1FFFF), 18);
  EXPECT_EQ(signed_width(0xFFFF), 17);
  EXPECT_EQ(signed_width(static_cast<std::uint32_t>(-0x10000)), 17);
  EXPECT_EQ(signed_width(0x7FFFFFFF), 32);
  EXPECT_EQ(signed_width(0x80000000), 32);
}

}  // namespace
}  // namespace t1000
