// Fuzz the binary decoder with random words: whenever a word decodes, the
// decode -> encode -> decode round trip must be a fixed point (don't-care
// fields may canonicalize, but the architectural meaning may not drift).
#include <gtest/gtest.h>

#include <cstdint>

#include "isa/encoding.hpp"

namespace t1000 {
namespace {

class DecodeFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DecodeFuzz, DecodeEncodeDecodeIsStable) {
  std::uint32_t state = GetParam() * 2654435761u + 12345;
  auto rng = [&state] {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  };
  constexpr std::uint32_t kIndex = 1000;  // room for backward branches
  int decoded_count = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t word = rng();
    Instruction first;
    try {
      first = decode(word, kIndex);
    } catch (const EncodingError&) {
      continue;  // unassigned encodings may reject
    }
    ++decoded_count;
    std::uint32_t reencoded = 0;
    ASSERT_NO_THROW(reencoded = encode(first, kIndex))
        << "word " << std::hex << word << " decoded to unencodable "
        << to_string(first);
    const Instruction second = decode(reencoded, kIndex);
    ASSERT_EQ(second, first) << "word " << std::hex << word;
  }
  // The opcode space is dense enough that most words decode.
  EXPECT_GT(decoded_count, 5000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Range(1u, 9u));

TEST(DecodeFuzz, AllPrimaryOpcodesProbed) {
  // Sweep every primary opcode with benign fields; each either decodes or
  // throws EncodingError - never crashes or loops.
  for (std::uint32_t op = 0; op < 64; ++op) {
    const std::uint32_t word = (op << 26) | (3u << 21) | (4u << 16) | 0x0010;
    try {
      const Instruction ins = decode(word, 100);
      const std::uint32_t re = encode(ins, 100);
      EXPECT_EQ(decode(re, 100), ins);
    } catch (const EncodingError&) {
      // acceptable: unassigned opcode
    }
  }
}

}  // namespace
}  // namespace t1000
