#include "isa/extdef.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace t1000 {
namespace {

// The paper's running example (Figure 3): sll r2,r3,4; addu r2,r2,r1.
ExtInstDef sll_addu() {
  return ExtInstDef(2, {
                           {.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 4},
                           {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1},
                       });
}

TEST(ExtInstDef, EvaluatesChain) {
  const ExtInstDef d = sll_addu();
  EXPECT_EQ(d.eval(3, 100), (3u << 4) + 100);
  EXPECT_EQ(d.length(), 2);
  EXPECT_EQ(d.num_inputs(), 2);
  EXPECT_EQ(d.base_cycles(), 2);
}

TEST(ExtInstDef, ThreeOpChainFromPaperFigure3) {
  // sll r2,r3,4 ; addu r2,r2,r1 ; sll r2,r2,2
  const ExtInstDef d(2, {
                            {.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 4},
                            {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1},
                            {.op = Opcode::kSll, .dst = 4, .a = 3, .imm = 2},
                        });
  EXPECT_EQ(d.eval(3, 100), ((3u << 4) + 100) << 2);
  EXPECT_EQ(d.base_cycles(), 3);
}

TEST(ExtInstDef, SingleInput) {
  const ExtInstDef d(1, {
                            {.op = Opcode::kAndi, .dst = 2, .a = 0, .imm = 0xFF},
                            {.op = Opcode::kXori, .dst = 3, .a = 2, .imm = 0x55},
                        });
  EXPECT_EQ(d.eval(0x1AB, 0xDEAD), (0x1ABu & 0xFF) ^ 0x55);
}

TEST(ExtInstDef, ImmediateExtensionRespected) {
  const ExtInstDef d(1, {{.op = Opcode::kAddiu, .dst = 2, .a = 0, .imm = -1}});
  EXPECT_EQ(d.eval(10, 0), 9u);
  const ExtInstDef z(1, {{.op = Opcode::kOri, .dst = 2, .a = 0, .imm = 0xFFFF}});
  EXPECT_EQ(z.eval(0, 0), 0xFFFFu);
}

TEST(ExtInstDef, LuiNeedsNoInputs) {
  const ExtInstDef d(0, {{.op = Opcode::kLui, .dst = 2, .imm = 0x12}});
  EXPECT_EQ(d.eval(0, 0), 0x120000u);
}

TEST(ExtInstDef, IdenticalSequencesShareSignature) {
  EXPECT_EQ(sll_addu().signature(), sll_addu().signature());
  EXPECT_EQ(sll_addu(), sll_addu());
}

TEST(ExtInstDef, DifferentImmediatesDiffer) {
  const ExtInstDef a(1, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 4}});
  const ExtInstDef b(1, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 5}});
  EXPECT_NE(a.signature(), b.signature());
}

TEST(ExtInstDef, RejectsNonAluOps) {
  EXPECT_THROW(ExtInstDef(1, {{.op = Opcode::kLw, .dst = 2, .a = 0}}),
               std::invalid_argument);
  EXPECT_THROW(ExtInstDef(1, {{.op = Opcode::kBeq, .dst = 2, .a = 0}}),
               std::invalid_argument);
}

TEST(ExtInstDef, RejectsMalformedSlots) {
  // Reads a slot that has not been written.
  EXPECT_THROW(ExtInstDef(1, {{.op = Opcode::kAddu, .dst = 2, .a = 0, .b = 3}}),
               std::invalid_argument);
  // Reads input slot 1 with only one declared input.
  EXPECT_THROW(ExtInstDef(1, {{.op = Opcode::kAddu, .dst = 2, .a = 0, .b = 1}}),
               std::invalid_argument);
  // Non-sequential dst.
  EXPECT_THROW(ExtInstDef(2, {{.op = Opcode::kAddu, .dst = 5, .a = 0, .b = 1}}),
               std::invalid_argument);
  // Empty.
  EXPECT_THROW(ExtInstDef(2, {}), std::invalid_argument);
}

TEST(ExtInstDef, RejectsOverlongChains) {
  std::vector<MicroOp> uops;
  for (int i = 0; i < kMaxUops + 1; ++i) {
    uops.push_back({.op = Opcode::kAddiu,
                    .dst = static_cast<std::int8_t>(2 + i),
                    .a = static_cast<std::int8_t>(i == 0 ? 0 : 1 + i),
                    .imm = 1});
  }
  EXPECT_THROW(ExtInstDef(1, uops), std::invalid_argument);
  uops.pop_back();
  EXPECT_NO_THROW(ExtInstDef(1, uops));
}

TEST(ExtInstTable, InternDeduplicates) {
  ExtInstTable table;
  const ConfId a = table.intern(sll_addu());
  const ConfId b = table.intern(sll_addu());
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1);
  const ExtInstDef other(1, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 4}});
  const ConfId c = table.intern(other);
  EXPECT_NE(c, a);
  EXPECT_EQ(table.size(), 2);
  EXPECT_EQ(table.at(a).length(), 2);
  EXPECT_EQ(table.at(c).length(), 1);
}

}  // namespace
}  // namespace t1000
