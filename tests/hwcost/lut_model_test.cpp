#include "hwcost/lut_model.hpp"

#include <gtest/gtest.h>

namespace t1000 {
namespace {

ExtInstDef add_chain(int n) {
  std::vector<MicroOp> uops;
  for (int i = 0; i < n; ++i) {
    uops.push_back({.op = Opcode::kAddu,
                    .dst = static_cast<std::int8_t>(2 + i),
                    .a = static_cast<std::int8_t>(i == 0 ? 0 : 1 + i),
                    .b = 1});
  }
  return ExtInstDef(2, uops);
}

TEST(LutModel, SingleAddCostsOneLutPerBit) {
  const ExtInstDef d(2, {{.op = Opcode::kAddu, .dst = 2, .a = 0, .b = 1}});
  const LutEstimate e = estimate_luts(d, {16, 16});
  EXPECT_EQ(e.luts, 17);  // 16-bit operands -> 17-bit sum
  EXPECT_EQ(e.levels, 1);
}

TEST(LutModel, NarrowInputsShrinkCost) {
  const ExtInstDef d(2, {{.op = Opcode::kAddu, .dst = 2, .a = 0, .b = 1}});
  EXPECT_LT(estimate_luts(d, {4, 4}).luts, estimate_luts(d, {18, 18}).luts);
  EXPECT_EQ(estimate_luts(d, {4, 4}).luts, 5);
}

TEST(LutModel, ConstantShiftsAreFree) {
  const ExtInstDef d(1, {{.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 4}});
  const LutEstimate e = estimate_luts(d, {10, 1});
  EXPECT_EQ(e.luts, 0);
  EXPECT_EQ(e.levels, 0);
}

TEST(LutModel, LogicOpsPackThreeToOneLevel) {
  // Three dependent 2-input logic ops fuse into one LUT level.
  const ExtInstDef d(2, {
                            {.op = Opcode::kAnd, .dst = 2, .a = 0, .b = 1},
                            {.op = Opcode::kXor, .dst = 3, .a = 2, .b = 1},
                            {.op = Opcode::kOr, .dst = 4, .a = 3, .b = 0},
                        });
  const LutEstimate e = estimate_luts(d, {12, 12});
  EXPECT_EQ(e.levels, 1);
  EXPECT_EQ(e.luts, 12);
  // A fourth logic op spills into a second level.
  const ExtInstDef d4(2, {
                             {.op = Opcode::kAnd, .dst = 2, .a = 0, .b = 1},
                             {.op = Opcode::kXor, .dst = 3, .a = 2, .b = 1},
                             {.op = Opcode::kOr, .dst = 4, .a = 3, .b = 0},
                             {.op = Opcode::kXor, .dst = 5, .a = 4, .b = 1},
                         });
  const LutEstimate e4 = estimate_luts(d4, {12, 12});
  EXPECT_EQ(e4.levels, 2);
  EXPECT_EQ(e4.luts, 24);
}

TEST(LutModel, ArithmeticBreaksLogicPacking) {
  const ExtInstDef d(2, {
                            {.op = Opcode::kAnd, .dst = 2, .a = 0, .b = 1},
                            {.op = Opcode::kAddu, .dst = 3, .a = 2, .b = 1},
                            {.op = Opcode::kXor, .dst = 4, .a = 3, .b = 1},
                        });
  const LutEstimate e = estimate_luts(d, {8, 8});
  EXPECT_EQ(e.levels, 3);  // logic group, add, logic group
  EXPECT_EQ(e.luts, 8 + 9 + 9);
}

TEST(LutModel, ComparatorCostsOperandWidth) {
  const ExtInstDef d(2, {{.op = Opcode::kSlt, .dst = 2, .a = 0, .b = 1}});
  EXPECT_EQ(estimate_luts(d, {14, 14}).luts, 14);
}

TEST(LutModel, AndiMaskNarrowsPropagatedWidth) {
  const ExtInstDef d(1, {
                            {.op = Opcode::kAndi, .dst = 2, .a = 0, .imm = 0xF},
                            {.op = Opcode::kAddiu, .dst = 3, .a = 2, .imm = 1},
                        });
  const auto widths = propagate_widths(d, {30, 1});
  EXPECT_LE(widths[0], 6);  // masked to 4 bits (+ sign headroom)
  EXPECT_LE(widths[1], 7);
}

TEST(LutModel, WidthPropagationThroughShift) {
  const ExtInstDef d(1, {
                            {.op = Opcode::kSll, .dst = 2, .a = 0, .imm = 10},
                            {.op = Opcode::kAddiu, .dst = 3, .a = 2, .imm = 1},
                        });
  const auto widths = propagate_widths(d, {6, 1});
  EXPECT_EQ(widths[0], 16);
  EXPECT_EQ(widths[1], 17);
}

TEST(LutModel, PaperScaleSequencesFitThePfu) {
  // Typical selected sequences (2-4 narrow ops) must comfortably fit 150
  // LUTs; the paper's largest observed instruction was 105.
  for (int n = 2; n <= 4; ++n) {
    const LutEstimate e = estimate_luts(add_chain(n), {18, 18});
    EXPECT_TRUE(e.fits()) << n << " adds cost " << e.luts;
  }
}

TEST(LutModel, WorstCaseLongWideChainExceedsBudget) {
  const LutEstimate e = estimate_luts(add_chain(kMaxUops), {28, 28});
  EXPECT_FALSE(e.fits());
}

TEST(LutModel, FitsRespectsCustomBudget) {
  const LutEstimate e = estimate_luts(add_chain(2), {18, 18});
  EXPECT_TRUE(e.fits(150));
  EXPECT_FALSE(e.fits(10));
}

}  // namespace
}  // namespace t1000
