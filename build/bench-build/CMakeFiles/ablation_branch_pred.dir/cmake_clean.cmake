file(REMOVE_RECURSE
  "../bench/ablation_branch_pred"
  "../bench/ablation_branch_pred.pdb"
  "CMakeFiles/ablation_branch_pred.dir/ablation_branch_pred.cpp.o"
  "CMakeFiles/ablation_branch_pred.dir/ablation_branch_pred.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_branch_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
