# Empty dependencies file for ablation_branch_pred.
# This may be replaced when dependencies are built.
