file(REMOVE_RECURSE
  "../bench/compiled_kernels"
  "../bench/compiled_kernels.pdb"
  "CMakeFiles/compiled_kernels.dir/compiled_kernels.cpp.o"
  "CMakeFiles/compiled_kernels.dir/compiled_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
