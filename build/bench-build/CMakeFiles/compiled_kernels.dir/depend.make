# Empty dependencies file for compiled_kernels.
# This may be replaced when dependencies are built.
