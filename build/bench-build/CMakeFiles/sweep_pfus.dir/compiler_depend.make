# Empty compiler generated dependencies file for sweep_pfus.
# This may be replaced when dependencies are built.
