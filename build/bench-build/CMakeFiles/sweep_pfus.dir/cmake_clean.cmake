file(REMOVE_RECURSE
  "../bench/sweep_pfus"
  "../bench/sweep_pfus.pdb"
  "CMakeFiles/sweep_pfus.dir/sweep_pfus.cpp.o"
  "CMakeFiles/sweep_pfus.dir/sweep_pfus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_pfus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
