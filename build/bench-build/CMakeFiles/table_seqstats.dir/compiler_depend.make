# Empty compiler generated dependencies file for table_seqstats.
# This may be replaced when dependencies are built.
