file(REMOVE_RECURSE
  "../bench/table_seqstats"
  "../bench/table_seqstats.pdb"
  "CMakeFiles/table_seqstats.dir/table_seqstats.cpp.o"
  "CMakeFiles/table_seqstats.dir/table_seqstats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_seqstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
