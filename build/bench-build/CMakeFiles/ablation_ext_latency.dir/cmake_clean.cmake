file(REMOVE_RECURSE
  "../bench/ablation_ext_latency"
  "../bench/ablation_ext_latency.pdb"
  "CMakeFiles/ablation_ext_latency.dir/ablation_ext_latency.cpp.o"
  "CMakeFiles/ablation_ext_latency.dir/ablation_ext_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ext_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
