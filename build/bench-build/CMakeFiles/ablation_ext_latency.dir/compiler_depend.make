# Empty compiler generated dependencies file for ablation_ext_latency.
# This may be replaced when dependencies are built.
