file(REMOVE_RECURSE
  "../bench/sensitivity_reconfig"
  "../bench/sensitivity_reconfig.pdb"
  "CMakeFiles/sensitivity_reconfig.dir/sensitivity_reconfig.cpp.o"
  "CMakeFiles/sensitivity_reconfig.dir/sensitivity_reconfig.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
