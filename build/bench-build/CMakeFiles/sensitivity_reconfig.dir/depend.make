# Empty dependencies file for sensitivity_reconfig.
# This may be replaced when dependencies are built.
