file(REMOVE_RECURSE
  "../bench/fig7_area"
  "../bench/fig7_area.pdb"
  "CMakeFiles/fig7_area.dir/fig7_area.cpp.o"
  "CMakeFiles/fig7_area.dir/fig7_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
