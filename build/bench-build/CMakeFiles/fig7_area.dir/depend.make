# Empty dependencies file for fig7_area.
# This may be replaced when dependencies are built.
