
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extended_suite.cpp" "bench-build/CMakeFiles/extended_suite.dir/extended_suite.cpp.o" "gcc" "bench-build/CMakeFiles/extended_suite.dir/extended_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/t1000_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/extinst/CMakeFiles/t1000_extinst.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/t1000_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/t1000_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/t1000_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/t1000_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/t1000_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/t1000_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
