file(REMOVE_RECURSE
  "../bench/extended_suite"
  "../bench/extended_suite.pdb"
  "CMakeFiles/extended_suite.dir/extended_suite.cpp.o"
  "CMakeFiles/extended_suite.dir/extended_suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
