file(REMOVE_RECURSE
  "../bench/fig2_greedy"
  "../bench/fig2_greedy.pdb"
  "CMakeFiles/fig2_greedy.dir/fig2_greedy.cpp.o"
  "CMakeFiles/fig2_greedy.dir/fig2_greedy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
