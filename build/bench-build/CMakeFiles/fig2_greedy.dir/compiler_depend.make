# Empty compiler generated dependencies file for fig2_greedy.
# This may be replaced when dependencies are built.
