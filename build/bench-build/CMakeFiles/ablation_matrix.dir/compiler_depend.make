# Empty compiler generated dependencies file for ablation_matrix.
# This may be replaced when dependencies are built.
