file(REMOVE_RECURSE
  "../bench/ablation_matrix"
  "../bench/ablation_matrix.pdb"
  "CMakeFiles/ablation_matrix.dir/ablation_matrix.cpp.o"
  "CMakeFiles/ablation_matrix.dir/ablation_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
