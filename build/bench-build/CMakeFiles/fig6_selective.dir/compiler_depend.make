# Empty compiler generated dependencies file for fig6_selective.
# This may be replaced when dependencies are built.
