file(REMOVE_RECURSE
  "../bench/fig6_selective"
  "../bench/fig6_selective.pdb"
  "CMakeFiles/fig6_selective.dir/fig6_selective.cpp.o"
  "CMakeFiles/fig6_selective.dir/fig6_selective.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
