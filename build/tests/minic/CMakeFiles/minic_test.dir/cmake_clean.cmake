file(REMOVE_RECURSE
  "CMakeFiles/minic_test.dir/compile_exec_test.cpp.o"
  "CMakeFiles/minic_test.dir/compile_exec_test.cpp.o.d"
  "CMakeFiles/minic_test.dir/differential_test.cpp.o"
  "CMakeFiles/minic_test.dir/differential_test.cpp.o.d"
  "CMakeFiles/minic_test.dir/lexer_test.cpp.o"
  "CMakeFiles/minic_test.dir/lexer_test.cpp.o.d"
  "CMakeFiles/minic_test.dir/pipeline_integration_test.cpp.o"
  "CMakeFiles/minic_test.dir/pipeline_integration_test.cpp.o.d"
  "minic_test"
  "minic_test.pdb"
  "minic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
