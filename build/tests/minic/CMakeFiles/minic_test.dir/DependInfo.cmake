
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/minic/compile_exec_test.cpp" "tests/minic/CMakeFiles/minic_test.dir/compile_exec_test.cpp.o" "gcc" "tests/minic/CMakeFiles/minic_test.dir/compile_exec_test.cpp.o.d"
  "/root/repo/tests/minic/differential_test.cpp" "tests/minic/CMakeFiles/minic_test.dir/differential_test.cpp.o" "gcc" "tests/minic/CMakeFiles/minic_test.dir/differential_test.cpp.o.d"
  "/root/repo/tests/minic/lexer_test.cpp" "tests/minic/CMakeFiles/minic_test.dir/lexer_test.cpp.o" "gcc" "tests/minic/CMakeFiles/minic_test.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/minic/pipeline_integration_test.cpp" "tests/minic/CMakeFiles/minic_test.dir/pipeline_integration_test.cpp.o" "gcc" "tests/minic/CMakeFiles/minic_test.dir/pipeline_integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minic/CMakeFiles/t1000_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/t1000_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/extinst/CMakeFiles/t1000_extinst.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/t1000_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/t1000_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/t1000_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/t1000_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
