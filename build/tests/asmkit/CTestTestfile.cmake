# CMake generated Testfile for 
# Source directory: /root/repo/tests/asmkit
# Build directory: /root/repo/build/tests/asmkit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/asmkit/asmkit_test[1]_include.cmake")
