file(REMOVE_RECURSE
  "CMakeFiles/hwcost_test.dir/lut_model_test.cpp.o"
  "CMakeFiles/hwcost_test.dir/lut_model_test.cpp.o.d"
  "hwcost_test"
  "hwcost_test.pdb"
  "hwcost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwcost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
