
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cfg/cfg_test.cpp" "tests/cfg/CMakeFiles/cfg_test.dir/cfg_test.cpp.o" "gcc" "tests/cfg/CMakeFiles/cfg_test.dir/cfg_test.cpp.o.d"
  "/root/repo/tests/cfg/dot_test.cpp" "tests/cfg/CMakeFiles/cfg_test.dir/dot_test.cpp.o" "gcc" "tests/cfg/CMakeFiles/cfg_test.dir/dot_test.cpp.o.d"
  "/root/repo/tests/cfg/liveness_test.cpp" "tests/cfg/CMakeFiles/cfg_test.dir/liveness_test.cpp.o" "gcc" "tests/cfg/CMakeFiles/cfg_test.dir/liveness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/t1000_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/t1000_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
