
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isa/alu_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/alu_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/alu_test.cpp.o.d"
  "/root/repo/tests/isa/encoding_fuzz_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/encoding_fuzz_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/encoding_fuzz_test.cpp.o.d"
  "/root/repo/tests/isa/encoding_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/encoding_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/encoding_test.cpp.o.d"
  "/root/repo/tests/isa/extdef_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/extdef_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/extdef_test.cpp.o.d"
  "/root/repo/tests/isa/instruction_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/instruction_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/instruction_test.cpp.o.d"
  "/root/repo/tests/isa/opcode_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/opcode_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/opcode_test.cpp.o.d"
  "/root/repo/tests/isa/reg_test.cpp" "tests/isa/CMakeFiles/isa_test.dir/reg_test.cpp.o" "gcc" "tests/isa/CMakeFiles/isa_test.dir/reg_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
