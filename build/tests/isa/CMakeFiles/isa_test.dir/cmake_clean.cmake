file(REMOVE_RECURSE
  "CMakeFiles/isa_test.dir/alu_test.cpp.o"
  "CMakeFiles/isa_test.dir/alu_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/encoding_fuzz_test.cpp.o"
  "CMakeFiles/isa_test.dir/encoding_fuzz_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/encoding_test.cpp.o"
  "CMakeFiles/isa_test.dir/encoding_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/extdef_test.cpp.o"
  "CMakeFiles/isa_test.dir/extdef_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/instruction_test.cpp.o"
  "CMakeFiles/isa_test.dir/instruction_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/opcode_test.cpp.o"
  "CMakeFiles/isa_test.dir/opcode_test.cpp.o.d"
  "CMakeFiles/isa_test.dir/reg_test.cpp.o"
  "CMakeFiles/isa_test.dir/reg_test.cpp.o.d"
  "isa_test"
  "isa_test.pdb"
  "isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
