# CMake generated Testfile for 
# Source directory: /root/repo/tests/extinst
# Build directory: /root/repo/build/tests/extinst
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/extinst/extinst_test[1]_include.cmake")
