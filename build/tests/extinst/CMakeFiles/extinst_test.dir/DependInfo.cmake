
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extinst/extract_test.cpp" "tests/extinst/CMakeFiles/extinst_test.dir/extract_test.cpp.o" "gcc" "tests/extinst/CMakeFiles/extinst_test.dir/extract_test.cpp.o.d"
  "/root/repo/tests/extinst/matrix_test.cpp" "tests/extinst/CMakeFiles/extinst_test.dir/matrix_test.cpp.o" "gcc" "tests/extinst/CMakeFiles/extinst_test.dir/matrix_test.cpp.o.d"
  "/root/repo/tests/extinst/property_test.cpp" "tests/extinst/CMakeFiles/extinst_test.dir/property_test.cpp.o" "gcc" "tests/extinst/CMakeFiles/extinst_test.dir/property_test.cpp.o.d"
  "/root/repo/tests/extinst/rewrite_test.cpp" "tests/extinst/CMakeFiles/extinst_test.dir/rewrite_test.cpp.o" "gcc" "tests/extinst/CMakeFiles/extinst_test.dir/rewrite_test.cpp.o.d"
  "/root/repo/tests/extinst/select_test.cpp" "tests/extinst/CMakeFiles/extinst_test.dir/select_test.cpp.o" "gcc" "tests/extinst/CMakeFiles/extinst_test.dir/select_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extinst/CMakeFiles/t1000_extinst.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/t1000_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/t1000_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/t1000_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/t1000_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
