# Empty compiler generated dependencies file for extinst_test.
# This may be replaced when dependencies are built.
