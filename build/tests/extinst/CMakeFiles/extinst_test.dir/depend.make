# Empty dependencies file for extinst_test.
# This may be replaced when dependencies are built.
