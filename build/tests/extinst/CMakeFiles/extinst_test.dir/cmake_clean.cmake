file(REMOVE_RECURSE
  "CMakeFiles/extinst_test.dir/extract_test.cpp.o"
  "CMakeFiles/extinst_test.dir/extract_test.cpp.o.d"
  "CMakeFiles/extinst_test.dir/matrix_test.cpp.o"
  "CMakeFiles/extinst_test.dir/matrix_test.cpp.o.d"
  "CMakeFiles/extinst_test.dir/property_test.cpp.o"
  "CMakeFiles/extinst_test.dir/property_test.cpp.o.d"
  "CMakeFiles/extinst_test.dir/rewrite_test.cpp.o"
  "CMakeFiles/extinst_test.dir/rewrite_test.cpp.o.d"
  "CMakeFiles/extinst_test.dir/select_test.cpp.o"
  "CMakeFiles/extinst_test.dir/select_test.cpp.o.d"
  "extinst_test"
  "extinst_test.pdb"
  "extinst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extinst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
