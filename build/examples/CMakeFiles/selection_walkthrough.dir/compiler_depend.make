# Empty compiler generated dependencies file for selection_walkthrough.
# This may be replaced when dependencies are built.
