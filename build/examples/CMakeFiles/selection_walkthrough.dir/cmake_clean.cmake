file(REMOVE_RECURSE
  "CMakeFiles/selection_walkthrough.dir/selection_walkthrough.cpp.o"
  "CMakeFiles/selection_walkthrough.dir/selection_walkthrough.cpp.o.d"
  "selection_walkthrough"
  "selection_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
