file(REMOVE_RECURSE
  "CMakeFiles/compile_and_accelerate.dir/compile_and_accelerate.cpp.o"
  "CMakeFiles/compile_and_accelerate.dir/compile_and_accelerate.cpp.o.d"
  "compile_and_accelerate"
  "compile_and_accelerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_accelerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
