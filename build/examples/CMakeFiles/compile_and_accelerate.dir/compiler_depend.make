# Empty compiler generated dependencies file for compile_and_accelerate.
# This may be replaced when dependencies are built.
