file(REMOVE_RECURSE
  "CMakeFiles/t1000_harness.dir/experiment.cpp.o"
  "CMakeFiles/t1000_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/t1000_harness.dir/report.cpp.o"
  "CMakeFiles/t1000_harness.dir/report.cpp.o.d"
  "libt1000_harness.a"
  "libt1000_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
