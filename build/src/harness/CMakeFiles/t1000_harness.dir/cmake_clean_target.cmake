file(REMOVE_RECURSE
  "libt1000_harness.a"
)
