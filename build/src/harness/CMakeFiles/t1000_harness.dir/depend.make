# Empty dependencies file for t1000_harness.
# This may be replaced when dependencies are built.
