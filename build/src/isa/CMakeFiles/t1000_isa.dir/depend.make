# Empty dependencies file for t1000_isa.
# This may be replaced when dependencies are built.
