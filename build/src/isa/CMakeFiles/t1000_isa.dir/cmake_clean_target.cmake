file(REMOVE_RECURSE
  "libt1000_isa.a"
)
