
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/alu.cpp" "src/isa/CMakeFiles/t1000_isa.dir/alu.cpp.o" "gcc" "src/isa/CMakeFiles/t1000_isa.dir/alu.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/isa/CMakeFiles/t1000_isa.dir/encoding.cpp.o" "gcc" "src/isa/CMakeFiles/t1000_isa.dir/encoding.cpp.o.d"
  "/root/repo/src/isa/extdef.cpp" "src/isa/CMakeFiles/t1000_isa.dir/extdef.cpp.o" "gcc" "src/isa/CMakeFiles/t1000_isa.dir/extdef.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/isa/CMakeFiles/t1000_isa.dir/instruction.cpp.o" "gcc" "src/isa/CMakeFiles/t1000_isa.dir/instruction.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/isa/CMakeFiles/t1000_isa.dir/opcode.cpp.o" "gcc" "src/isa/CMakeFiles/t1000_isa.dir/opcode.cpp.o.d"
  "/root/repo/src/isa/reg.cpp" "src/isa/CMakeFiles/t1000_isa.dir/reg.cpp.o" "gcc" "src/isa/CMakeFiles/t1000_isa.dir/reg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
