file(REMOVE_RECURSE
  "CMakeFiles/t1000_isa.dir/alu.cpp.o"
  "CMakeFiles/t1000_isa.dir/alu.cpp.o.d"
  "CMakeFiles/t1000_isa.dir/encoding.cpp.o"
  "CMakeFiles/t1000_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/t1000_isa.dir/extdef.cpp.o"
  "CMakeFiles/t1000_isa.dir/extdef.cpp.o.d"
  "CMakeFiles/t1000_isa.dir/instruction.cpp.o"
  "CMakeFiles/t1000_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/t1000_isa.dir/opcode.cpp.o"
  "CMakeFiles/t1000_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/t1000_isa.dir/reg.cpp.o"
  "CMakeFiles/t1000_isa.dir/reg.cpp.o.d"
  "libt1000_isa.a"
  "libt1000_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
