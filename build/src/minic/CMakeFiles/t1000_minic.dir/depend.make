# Empty dependencies file for t1000_minic.
# This may be replaced when dependencies are built.
