file(REMOVE_RECURSE
  "libt1000_minic.a"
)
