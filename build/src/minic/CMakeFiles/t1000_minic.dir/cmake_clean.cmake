file(REMOVE_RECURSE
  "CMakeFiles/t1000_minic.dir/codegen.cpp.o"
  "CMakeFiles/t1000_minic.dir/codegen.cpp.o.d"
  "CMakeFiles/t1000_minic.dir/lexer.cpp.o"
  "CMakeFiles/t1000_minic.dir/lexer.cpp.o.d"
  "CMakeFiles/t1000_minic.dir/minic.cpp.o"
  "CMakeFiles/t1000_minic.dir/minic.cpp.o.d"
  "CMakeFiles/t1000_minic.dir/parser.cpp.o"
  "CMakeFiles/t1000_minic.dir/parser.cpp.o.d"
  "libt1000_minic.a"
  "libt1000_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
