file(REMOVE_RECURSE
  "libt1000_cfg.a"
)
