file(REMOVE_RECURSE
  "CMakeFiles/t1000_cfg.dir/cfg.cpp.o"
  "CMakeFiles/t1000_cfg.dir/cfg.cpp.o.d"
  "CMakeFiles/t1000_cfg.dir/dot.cpp.o"
  "CMakeFiles/t1000_cfg.dir/dot.cpp.o.d"
  "CMakeFiles/t1000_cfg.dir/liveness.cpp.o"
  "CMakeFiles/t1000_cfg.dir/liveness.cpp.o.d"
  "libt1000_cfg.a"
  "libt1000_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
