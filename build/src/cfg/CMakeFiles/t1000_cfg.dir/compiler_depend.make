# Empty compiler generated dependencies file for t1000_cfg.
# This may be replaced when dependencies are built.
