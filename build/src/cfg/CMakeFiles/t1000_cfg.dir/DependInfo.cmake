
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/cfg.cpp" "src/cfg/CMakeFiles/t1000_cfg.dir/cfg.cpp.o" "gcc" "src/cfg/CMakeFiles/t1000_cfg.dir/cfg.cpp.o.d"
  "/root/repo/src/cfg/dot.cpp" "src/cfg/CMakeFiles/t1000_cfg.dir/dot.cpp.o" "gcc" "src/cfg/CMakeFiles/t1000_cfg.dir/dot.cpp.o.d"
  "/root/repo/src/cfg/liveness.cpp" "src/cfg/CMakeFiles/t1000_cfg.dir/liveness.cpp.o" "gcc" "src/cfg/CMakeFiles/t1000_cfg.dir/liveness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/t1000_asmkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
