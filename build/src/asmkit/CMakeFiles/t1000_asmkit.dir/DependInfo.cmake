
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmkit/assembler.cpp" "src/asmkit/CMakeFiles/t1000_asmkit.dir/assembler.cpp.o" "gcc" "src/asmkit/CMakeFiles/t1000_asmkit.dir/assembler.cpp.o.d"
  "/root/repo/src/asmkit/objfile.cpp" "src/asmkit/CMakeFiles/t1000_asmkit.dir/objfile.cpp.o" "gcc" "src/asmkit/CMakeFiles/t1000_asmkit.dir/objfile.cpp.o.d"
  "/root/repo/src/asmkit/program.cpp" "src/asmkit/CMakeFiles/t1000_asmkit.dir/program.cpp.o" "gcc" "src/asmkit/CMakeFiles/t1000_asmkit.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
