# Empty dependencies file for t1000_asmkit.
# This may be replaced when dependencies are built.
