file(REMOVE_RECURSE
  "CMakeFiles/t1000_asmkit.dir/assembler.cpp.o"
  "CMakeFiles/t1000_asmkit.dir/assembler.cpp.o.d"
  "CMakeFiles/t1000_asmkit.dir/objfile.cpp.o"
  "CMakeFiles/t1000_asmkit.dir/objfile.cpp.o.d"
  "CMakeFiles/t1000_asmkit.dir/program.cpp.o"
  "CMakeFiles/t1000_asmkit.dir/program.cpp.o.d"
  "libt1000_asmkit.a"
  "libt1000_asmkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_asmkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
