file(REMOVE_RECURSE
  "libt1000_asmkit.a"
)
