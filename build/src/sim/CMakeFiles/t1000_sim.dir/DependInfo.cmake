
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/executor.cpp" "src/sim/CMakeFiles/t1000_sim.dir/executor.cpp.o" "gcc" "src/sim/CMakeFiles/t1000_sim.dir/executor.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/t1000_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/t1000_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/profiler.cpp" "src/sim/CMakeFiles/t1000_sim.dir/profiler.cpp.o" "gcc" "src/sim/CMakeFiles/t1000_sim.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/t1000_asmkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
