# Empty compiler generated dependencies file for t1000_sim.
# This may be replaced when dependencies are built.
