file(REMOVE_RECURSE
  "libt1000_sim.a"
)
