file(REMOVE_RECURSE
  "CMakeFiles/t1000_sim.dir/executor.cpp.o"
  "CMakeFiles/t1000_sim.dir/executor.cpp.o.d"
  "CMakeFiles/t1000_sim.dir/memory.cpp.o"
  "CMakeFiles/t1000_sim.dir/memory.cpp.o.d"
  "CMakeFiles/t1000_sim.dir/profiler.cpp.o"
  "CMakeFiles/t1000_sim.dir/profiler.cpp.o.d"
  "libt1000_sim.a"
  "libt1000_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
