
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch.cpp" "src/uarch/CMakeFiles/t1000_uarch.dir/branch.cpp.o" "gcc" "src/uarch/CMakeFiles/t1000_uarch.dir/branch.cpp.o.d"
  "/root/repo/src/uarch/cache.cpp" "src/uarch/CMakeFiles/t1000_uarch.dir/cache.cpp.o" "gcc" "src/uarch/CMakeFiles/t1000_uarch.dir/cache.cpp.o.d"
  "/root/repo/src/uarch/pfu.cpp" "src/uarch/CMakeFiles/t1000_uarch.dir/pfu.cpp.o" "gcc" "src/uarch/CMakeFiles/t1000_uarch.dir/pfu.cpp.o.d"
  "/root/repo/src/uarch/timing.cpp" "src/uarch/CMakeFiles/t1000_uarch.dir/timing.cpp.o" "gcc" "src/uarch/CMakeFiles/t1000_uarch.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/t1000_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/t1000_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/t1000_hwcost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
