# Empty compiler generated dependencies file for t1000_uarch.
# This may be replaced when dependencies are built.
