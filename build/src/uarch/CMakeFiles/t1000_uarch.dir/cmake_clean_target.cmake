file(REMOVE_RECURSE
  "libt1000_uarch.a"
)
