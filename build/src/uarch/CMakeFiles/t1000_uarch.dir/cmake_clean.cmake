file(REMOVE_RECURSE
  "CMakeFiles/t1000_uarch.dir/branch.cpp.o"
  "CMakeFiles/t1000_uarch.dir/branch.cpp.o.d"
  "CMakeFiles/t1000_uarch.dir/cache.cpp.o"
  "CMakeFiles/t1000_uarch.dir/cache.cpp.o.d"
  "CMakeFiles/t1000_uarch.dir/pfu.cpp.o"
  "CMakeFiles/t1000_uarch.dir/pfu.cpp.o.d"
  "CMakeFiles/t1000_uarch.dir/timing.cpp.o"
  "CMakeFiles/t1000_uarch.dir/timing.cpp.o.d"
  "libt1000_uarch.a"
  "libt1000_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
