file(REMOVE_RECURSE
  "libt1000_hwcost.a"
)
