# Empty compiler generated dependencies file for t1000_hwcost.
# This may be replaced when dependencies are built.
