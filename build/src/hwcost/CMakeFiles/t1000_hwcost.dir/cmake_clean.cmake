file(REMOVE_RECURSE
  "CMakeFiles/t1000_hwcost.dir/lut_model.cpp.o"
  "CMakeFiles/t1000_hwcost.dir/lut_model.cpp.o.d"
  "libt1000_hwcost.a"
  "libt1000_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
