file(REMOVE_RECURSE
  "libt1000_extinst.a"
)
