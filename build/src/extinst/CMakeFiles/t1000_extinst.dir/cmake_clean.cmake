file(REMOVE_RECURSE
  "CMakeFiles/t1000_extinst.dir/chain.cpp.o"
  "CMakeFiles/t1000_extinst.dir/chain.cpp.o.d"
  "CMakeFiles/t1000_extinst.dir/extract.cpp.o"
  "CMakeFiles/t1000_extinst.dir/extract.cpp.o.d"
  "CMakeFiles/t1000_extinst.dir/matrix.cpp.o"
  "CMakeFiles/t1000_extinst.dir/matrix.cpp.o.d"
  "CMakeFiles/t1000_extinst.dir/rewrite.cpp.o"
  "CMakeFiles/t1000_extinst.dir/rewrite.cpp.o.d"
  "CMakeFiles/t1000_extinst.dir/select.cpp.o"
  "CMakeFiles/t1000_extinst.dir/select.cpp.o.d"
  "libt1000_extinst.a"
  "libt1000_extinst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_extinst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
