# Empty dependencies file for t1000_extinst.
# This may be replaced when dependencies are built.
