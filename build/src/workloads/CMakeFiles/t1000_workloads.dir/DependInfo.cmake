
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/epic.cpp" "src/workloads/CMakeFiles/t1000_workloads.dir/epic.cpp.o" "gcc" "src/workloads/CMakeFiles/t1000_workloads.dir/epic.cpp.o.d"
  "/root/repo/src/workloads/extended.cpp" "src/workloads/CMakeFiles/t1000_workloads.dir/extended.cpp.o" "gcc" "src/workloads/CMakeFiles/t1000_workloads.dir/extended.cpp.o.d"
  "/root/repo/src/workloads/g721.cpp" "src/workloads/CMakeFiles/t1000_workloads.dir/g721.cpp.o" "gcc" "src/workloads/CMakeFiles/t1000_workloads.dir/g721.cpp.o.d"
  "/root/repo/src/workloads/gsm.cpp" "src/workloads/CMakeFiles/t1000_workloads.dir/gsm.cpp.o" "gcc" "src/workloads/CMakeFiles/t1000_workloads.dir/gsm.cpp.o.d"
  "/root/repo/src/workloads/mpeg2.cpp" "src/workloads/CMakeFiles/t1000_workloads.dir/mpeg2.cpp.o" "gcc" "src/workloads/CMakeFiles/t1000_workloads.dir/mpeg2.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/t1000_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/t1000_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmkit/CMakeFiles/t1000_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/t1000_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
