file(REMOVE_RECURSE
  "libt1000_workloads.a"
)
