file(REMOVE_RECURSE
  "CMakeFiles/t1000_workloads.dir/epic.cpp.o"
  "CMakeFiles/t1000_workloads.dir/epic.cpp.o.d"
  "CMakeFiles/t1000_workloads.dir/extended.cpp.o"
  "CMakeFiles/t1000_workloads.dir/extended.cpp.o.d"
  "CMakeFiles/t1000_workloads.dir/g721.cpp.o"
  "CMakeFiles/t1000_workloads.dir/g721.cpp.o.d"
  "CMakeFiles/t1000_workloads.dir/gsm.cpp.o"
  "CMakeFiles/t1000_workloads.dir/gsm.cpp.o.d"
  "CMakeFiles/t1000_workloads.dir/mpeg2.cpp.o"
  "CMakeFiles/t1000_workloads.dir/mpeg2.cpp.o.d"
  "CMakeFiles/t1000_workloads.dir/workload.cpp.o"
  "CMakeFiles/t1000_workloads.dir/workload.cpp.o.d"
  "libt1000_workloads.a"
  "libt1000_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
