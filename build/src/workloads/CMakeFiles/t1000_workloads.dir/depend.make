# Empty dependencies file for t1000_workloads.
# This may be replaced when dependencies are built.
