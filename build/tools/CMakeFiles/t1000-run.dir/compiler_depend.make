# Empty compiler generated dependencies file for t1000-run.
# This may be replaced when dependencies are built.
