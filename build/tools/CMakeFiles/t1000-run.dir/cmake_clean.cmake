file(REMOVE_RECURSE
  "CMakeFiles/t1000-run.dir/t1000_run.cpp.o"
  "CMakeFiles/t1000-run.dir/t1000_run.cpp.o.d"
  "t1000-run"
  "t1000-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
