file(REMOVE_RECURSE
  "CMakeFiles/t1000-as.dir/t1000_as.cpp.o"
  "CMakeFiles/t1000-as.dir/t1000_as.cpp.o.d"
  "t1000-as"
  "t1000-as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000-as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
