# Empty dependencies file for t1000-as.
# This may be replaced when dependencies are built.
