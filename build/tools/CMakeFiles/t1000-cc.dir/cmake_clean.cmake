file(REMOVE_RECURSE
  "CMakeFiles/t1000-cc.dir/t1000_cc.cpp.o"
  "CMakeFiles/t1000-cc.dir/t1000_cc.cpp.o.d"
  "t1000-cc"
  "t1000-cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000-cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
