# Empty compiler generated dependencies file for t1000-cc.
# This may be replaced when dependencies are built.
