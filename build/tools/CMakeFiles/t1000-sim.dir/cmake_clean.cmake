file(REMOVE_RECURSE
  "CMakeFiles/t1000-sim.dir/t1000_sim.cpp.o"
  "CMakeFiles/t1000-sim.dir/t1000_sim.cpp.o.d"
  "t1000-sim"
  "t1000-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
