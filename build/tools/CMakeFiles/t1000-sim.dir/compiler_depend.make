# Empty compiler generated dependencies file for t1000-sim.
# This may be replaced when dependencies are built.
