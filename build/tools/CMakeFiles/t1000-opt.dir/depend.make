# Empty dependencies file for t1000-opt.
# This may be replaced when dependencies are built.
