file(REMOVE_RECURSE
  "CMakeFiles/t1000-opt.dir/t1000_opt.cpp.o"
  "CMakeFiles/t1000-opt.dir/t1000_opt.cpp.o.d"
  "t1000-opt"
  "t1000-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1000-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
