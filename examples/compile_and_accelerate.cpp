// The full story in one example: write a DSP kernel in MiniC, compile it,
// let the selective algorithm mine extended instructions out of the
// *compiled* code (exactly the paper's Section 2.1 flow), and measure the
// speedup on a 2-PFU T1000.
//
//   ./build/examples/compile_and_accelerate
#include <cstdio>

#include "asmkit/assembler.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "minic/minic.hpp"
#include "sim/executor.hpp"
#include "uarch/timing.hpp"

using namespace t1000;

int main() {
  const char* kSource = R"(
    // A GSM-flavoured synthesis filter written in MiniC.
    int frame[256];
    int hist[256];

    int synth(int rounds) {
      int state = 0;
      int acc = 0;
      for (int r = 0; r < rounds; r = r + 1) {
        for (int i = 0; i < 256; i = i + 1) {
          frame[i] = (i * 73 + r * 19) & 0x1FFF;
        }
        for (int i = 0; i < 256; i = i + 1) {
          int x = frame[i];
          int y = ((x << 2) + state >> 1) + 33;
          y = y + x;
          hist[i] = y;
          state = (y >> 2) & 0xFFF;
          acc = acc + ((x << 1) ^ y);
        }
      }
      return acc;
    }

    int main() { return synth(40) & 0xFFFFFF; }
  )";

  std::printf("compiling MiniC kernel...\n");
  const std::string asm_text = minic::compile_to_assembly(kSource);
  const Program program = assemble(asm_text);
  std::printf("  %d instructions of T1000 assembly\n\n", program.size());

  const AnalyzedProgram ap = analyze_program(program, 1u << 26);
  std::printf("profile: %llu dynamic instructions, %zu candidate chains\n",
              static_cast<unsigned long long>(ap.profile.total_dynamic),
              ap.sites.size());

  SelectPolicy policy;
  policy.num_pfus = 2;
  Selection sel = select_selective(ap, policy);
  std::printf("selective algorithm chose %d configuration(s):\n",
              sel.num_configs());
  for (int c = 0; c < sel.num_configs(); ++c) {
    const ExtInstDef& def = sel.table.at(static_cast<ConfId>(c));
    std::printf("  Conf %d (%d ops):", c, def.length());
    for (const MicroOp& u : def.uops()) {
      std::printf(" %s", std::string(mnemonic(u.op)).c_str());
    }
    std::printf("\n");
  }

  const RewriteResult rr = rewrite_program(program, sel.apps);
  Executor ref(program);
  ref.run(1u << 26);
  Executor opt(rr.program, &sel.table);
  opt.run(1u << 26);
  std::printf("\nchecksums: 0x%08X vs 0x%08X (%s)\n", ref.reg(2), opt.reg(2),
              ref.reg(2) == opt.reg(2) ? "match" : "MISMATCH");

  MachineConfig base_cfg;
  MachineConfig pfu_cfg;
  pfu_cfg.pfu = {.count = 2, .reconfig_latency = 10};
  const SimStats base = simulate({.program = &program, .machine = base_cfg});
  const SimStats fast = simulate({.program = &rr.program, .ext_table = &sel.table, .machine = pfu_cfg});
  std::printf(
      "baseline superscalar: %llu cycles (IPC %.2f)\n"
      "T1000 with 2 PFUs:    %llu cycles (IPC %.2f)\n"
      "speedup from compiled code: %.3fx\n",
      static_cast<unsigned long long>(base.cycles), base.ipc(),
      static_cast<unsigned long long>(fast.cycles), fast.ipc(),
      static_cast<double>(base.cycles) / static_cast<double>(fast.cycles));
  return ref.reg(2) == opt.reg(2) ? 0 : 1;
}
