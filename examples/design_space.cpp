// Design-space exploration: how many PFUs, and how fast must
// reconfiguration be? Sweeps both knobs for one workload and prints the
// resulting speedup matrix - the question a RISC-V-style ISA-extension
// architect would ask of this toolchain.
//
//   ./build/examples/design_space [workload]      (default: gsm_enc)
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "gsm_enc";
  const Workload* w = find_workload(name);
  if (w == nullptr) {
    std::printf("unknown workload '%s'\n", name.c_str());
    return 1;
  }

  WorkloadExperiment exp(*w);
  const RunOutcome base = exp.run(Selector::kNone, baseline_machine());
  std::printf("%s: baseline %llu cycles, IPC %.2f\n\n", w->name.c_str(),
              static_cast<unsigned long long>(base.stats.cycles),
              base.stats.ipc());

  const int pfu_counts[] = {1, 2, 3, 4, 6, 8};
  const int latencies[] = {0, 10, 50, 200, 500};

  Table table({"PFUs \\ reconfig", "0", "10", "50", "200", "500"});
  for (const int pfus : pfu_counts) {
    std::vector<std::string> row{std::to_string(pfus)};
    for (const int lat : latencies) {
      SelectPolicy policy;
      policy.num_pfus = pfus;
      const RunOutcome r =
          exp.run(Selector::kSelective, pfu_machine(pfus, lat), policy);
      row.push_back(fmt_ratio(speedup(base.stats, r.stats)));
    }
    table.add_row(std::move(row));
  }
  std::printf("selective-algorithm speedup:\n%s\n",
              table.to_string().c_str());
  std::printf(
      "Reading guide: rows saturate once the PFU count covers the hot\n"
      "loop's distinct sequences; columns barely move because the selective\n"
      "algorithm leaves almost no reconfigurations on the hot path.\n");
  return 0;
}
