// Design-space exploration: how many PFUs, and how fast must
// reconfiguration be? Sweeps both knobs for one workload and prints the
// resulting speedup matrix - the question a RISC-V-style ISA-extension
// architect would ask of this toolchain. The sweep is declared as an
// ExperimentGrid, so the points run on all cores and repeat runs come out
// of the result cache.
//
//   ./build/examples/design_space [workload] [--jobs N] [--json FILE]
#include <cstdio>
#include <string>

#include "harness/grid.hpp"
#include "harness/report.hpp"

using namespace t1000;

int main(int argc, char** argv) {
  std::string name = "gsm_enc";
  BenchOptions opts;
  {
    long jobs = 0;
    bool no_cache = false;
    OptionParser parser("design_space",
                        "PFU-count x reconfiguration-latency speedup matrix");
    parser.add_int("--jobs", "N", "worker threads", &jobs);
    parser.add_string("--json", "FILE", "write results as JSON",
                      &opts.json_path);
    parser.add_flag("--no-cache", "disable the on-disk result cache",
                    &no_cache);
    parser.set_positional("workload", 0, 1);
    const auto positional = parser.parse(argc, argv);
    if (!positional.empty()) name = positional[0];
    opts.grid.jobs = static_cast<int>(jobs);
    if (!no_cache) opts.grid.cache_dir = ".t1000-cache";
  }

  const Workload* w = find_workload(name);
  if (w == nullptr) {
    std::printf("unknown workload '%s'\n", name.c_str());
    return 1;
  }

  const int pfu_counts[] = {1, 2, 3, 4, 6, 8};
  const int latencies[] = {0, 10, 50, 200, 500};

  ExperimentGrid grid;
  grid.add_workload(*w);
  grid.add(baseline_spec(w->name));
  for (const int pfus : pfu_counts) {
    for (const int lat : latencies) {
      grid.add(selective_spec(
          w->name, std::to_string(pfus) + "pfu@" + std::to_string(lat), pfus,
          lat));
    }
  }
  const GridResult res = grid.run(opts.grid);

  const SimStats& base = res.stats(w->name, "baseline");
  std::printf("%s: baseline %llu cycles, IPC %.2f\n\n", w->name.c_str(),
              static_cast<unsigned long long>(base.cycles), base.ipc());

  Table table({"PFUs \\ reconfig", "0", "10", "50", "200", "500"});
  for (const int pfus : pfu_counts) {
    std::vector<std::string> row{std::to_string(pfus)};
    for (const int lat : latencies) {
      row.push_back(fmt_ratio(speedup(
          base, res.stats(w->name, std::to_string(pfus) + "pfu@" +
                                       std::to_string(lat)))));
    }
    table.add_row(std::move(row));
  }
  std::printf("selective-algorithm speedup:\n%s\n", table.to_string().c_str());
  std::printf(
      "Reading guide: rows saturate once the PFU count covers the hot\n"
      "loop's distinct sequences; columns barely move because the selective\n"
      "algorithm leaves almost no reconfigurations on the hot path.\n");
  return finish_bench(res, opts);
}
