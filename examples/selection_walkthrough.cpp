// Walkthrough of the paper's Figures 3-5: the subsequence matrix on the
// exact example loop from Section 5.1, and what the selective algorithm
// picks with one PFU.
//
//   ./build/examples/selection_walkthrough
#include <cstdio>

#include "asmkit/assembler.hpp"
#include "extinst/matrix.hpp"
#include "extinst/select.hpp"
#include "hwcost/lut_model.hpp"

using namespace t1000;

int main() {
  // The paper's Figure 3: inside one loop, one maximal occurrence of
  //   I = sll; addu; sll
  // and two of
  //   J = sll; addu
  // where J is also the prefix of I.
  const Program program = assemble(R"(
        .data
  buf:  .space 64
        .text
  main: li   $t1, 100
        li   $t3, 3
        la   $t4, buf
        li   $t0, 0
  loop: sll  $t2, $t3, 4      # sequence I
        addu $t2, $t2, $t1
        sll  $t2, $t2, 2
        sw   $t2, 0($t4)
        sll  $t5, $t3, 4      # sequence J, occurrence 1
        addu $t5, $t5, $t1
        sw   $t5, 4($t4)
        sll  $t6, $t3, 4      # sequence J, occurrence 2
        addu $t6, $t6, $t1
        sw   $t6, 8($t4)
        addiu $t0, $t0, 1
        slti $at, $t0, 50
        bne  $at, $zero, loop
        halt
  )");

  const AnalyzedProgram ap = analyze_program(program, 1u << 20);
  std::printf("extracted %zu maximal sequences inside the loop\n\n",
              ap.sites.size());

  std::vector<int> in_loop;
  for (std::size_t i = 0; i < ap.sites.size(); ++i) {
    in_loop.push_back(static_cast<int>(i));
  }
  const RegionMatrix rm = build_region_matrix(
      program, ap.profile, ap.sites, in_loop, 0, 2, kPfuLutBudget);

  std::printf("distinct candidate sequences (rows/cols of Figure 4):\n");
  for (int c = 0; c < rm.k(); ++c) {
    const ExtInstDef& def = rm.candidates[static_cast<std::size_t>(c)].def;
    std::printf("  [%d] len %d, gain if chosen alone: %llu cycles:", c,
                def.length(),
                static_cast<unsigned long long>(
                    rm.candidates[static_cast<std::size_t>(c)].solo_gain));
    for (const MicroOp& u : def.uops()) {
      std::printf(" %s", std::string(mnemonic(u.op)).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nsubsequence matrix [I,J] = appearances of I within J:\n    ");
  for (int c = 0; c < rm.k(); ++c) std::printf("%4d", c);
  std::printf("\n");
  for (int r = 0; r < rm.k(); ++r) {
    std::printf("  %d ", r);
    for (int c = 0; c < rm.k(); ++c) {
      std::printf("%4d", rm.counts[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(c)]);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper reading: the diagonal counts maximal appearances; the\n"
      "off-diagonal 1 is J appearing inside I. J's total (3 sites x 1 cycle)\n"
      "beats I (1 site x 2 cycles), so with one PFU the algorithm picks J:\n\n");

  SelectPolicy policy;
  policy.num_pfus = 1;
  policy.time_threshold = 0.0;
  const Selection sel = select_selective(ap, policy);
  std::printf("selective @1 PFU chose %d configuration, applied %zu times:\n",
              sel.num_configs(), sel.apps.size());
  for (const MicroOp& u : sel.table.at(0).uops()) {
    std::printf("  %s\n", std::string(mnemonic(u.op)).c_str());
  }
  return 0;
}
