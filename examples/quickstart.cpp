// Quickstart: the full T1000 toolchain on a small hand-written kernel.
//
//   1. assemble a program,
//   2. run it functionally and profile it,
//   3. let the selective algorithm pick extended instructions,
//   4. rewrite the binary,
//   5. compare baseline vs. PFU-augmented timing.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "asmkit/assembler.hpp"
#include "extinst/rewrite.hpp"
#include "extinst/select.hpp"
#include "hwcost/lut_model.hpp"
#include "sim/executor.hpp"
#include "uarch/timing.hpp"

using namespace t1000;

int main() {
  // A toy DSP kernel: saturating scale-and-bias over a 64-entry buffer.
  const Program program = assemble(R"(
        .data
  buf:  .space 256
        .text
  main: la   $t8, buf
        li   $t9, 64
        li   $s0, 7
        li   $s6, 0x1357
  fill: andi $t2, $s6, 0xFFF
        sw   $t2, 0($t8)
        addiu $s6, $s6, 0x123
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, fill

        la   $t8, buf
        li   $t9, 64
  loop: lw   $t2, 0($t8)
        sll  $t3, $t2, 2       # --- a fusable 4-op chain ---
        addu $t3, $t3, $s0
        sra  $t3, $t3, 1
        addiu $t3, $t3, 100
        sw   $t3, 0($t8)
        addu $v0, $v0, $t3
        addiu $t8, $t8, 4
        addiu $t9, $t9, -1
        bgtz $t9, loop
        halt
  )");
  std::printf("assembled %d instructions\n", program.size());

  // Functional run + profile + candidate extraction.
  const AnalyzedProgram ap = analyze_program(program, 1u << 20);
  std::printf("profiled %llu dynamic instructions, %zu candidate sites\n",
              static_cast<unsigned long long>(ap.profile.total_dynamic),
              ap.sites.size());

  // Selective selection for a 2-PFU machine.
  SelectPolicy policy;
  policy.num_pfus = 2;
  Selection sel = select_selective(ap, policy);
  std::printf("selected %d extended instruction(s):\n", sel.num_configs());
  for (int c = 0; c < sel.num_configs(); ++c) {
    const ExtInstDef& def = sel.table.at(static_cast<ConfId>(c));
    std::printf("  Conf %d: %d ops, saves %d cycles/use, ~%d LUTs\n", c,
                def.length(), def.base_cycles() - 1,
                sel.lut_costs[static_cast<std::size_t>(c)]);
  }

  // Rewrite and validate.
  const RewriteResult rr = rewrite_program(program, sel.apps);
  Executor ref(program);
  ref.run(1u << 20);
  Executor opt(rr.program, &sel.table);
  opt.run(1u << 20);
  std::printf("checksums: baseline 0x%08X, rewritten 0x%08X (%s)\n",
              ref.reg(2), opt.reg(2),
              ref.reg(2) == opt.reg(2) ? "match" : "MISMATCH");

  // Timing: plain superscalar vs. T1000 with 2 PFUs.
  MachineConfig plain;
  MachineConfig t1000_cfg;
  t1000_cfg.pfu = {.count = 2, .reconfig_latency = 10};
  const SimStats base = simulate({.program = &program, .machine = plain});
  const SimStats pfu = simulate({.program = &rr.program, .ext_table = &sel.table, .machine = t1000_cfg});
  std::printf(
      "baseline: %llu cycles (IPC %.2f)\nT1000:    %llu cycles (IPC %.2f)\n"
      "speedup:  %.3fx\n",
      static_cast<unsigned long long>(base.cycles), base.ipc(),
      static_cast<unsigned long long>(pfu.cycles), pfu.ipc(),
      static_cast<double>(base.cycles) / static_cast<double>(pfu.cycles));
  return 0;
}
