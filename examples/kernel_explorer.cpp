// Kernel explorer: inspect what the toolchain finds in a benchmark.
//
//   ./build/examples/kernel_explorer [workload] [--dot]   (default: gsm_dec)
//
// Prints the benchmark's loop structure, every maximal candidate sequence
// with its dataflow, and the configurations selected for 2- and 4-PFU
// machines with their LUT costs. With --dot, emits the control-flow graph
// in Graphviz format instead (pipe through `dot -Tsvg`).
#include <cstdio>
#include <string>

#include "cfg/cfg.hpp"
#include "cfg/dot.hpp"
#include "extinst/select.hpp"
#include "hwcost/lut_model.hpp"
#include "workloads/workload.hpp"

using namespace t1000;

namespace {

void print_selection(const char* label, const AnalyzedProgram& ap, int pfus) {
  SelectPolicy policy;
  policy.num_pfus = pfus;
  const Selection sel = select_selective(ap, policy);
  std::printf("%s: %d configuration(s), %zu application site(s)\n", label,
              sel.num_configs(), sel.apps.size());
  for (int c = 0; c < sel.num_configs(); ++c) {
    const ExtInstDef& def = sel.table.at(static_cast<ConfId>(c));
    std::printf("  Conf %d (%d ops, ~%d LUTs):", c, def.length(),
                sel.lut_costs[static_cast<std::size_t>(c)]);
    for (const MicroOp& u : def.uops()) {
      std::printf(" %s", std::string(mnemonic(u.op)).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool dot = false;
  std::string name = "gsm_dec";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--dot") {
      dot = true;
    } else {
      name = argv[i];
    }
  }
  const Workload* w = find_workload(name);
  if (w == nullptr) {
    std::printf("unknown workload '%s'; available:\n", name.c_str());
    for (const Workload& x : all_workloads()) {
      std::printf("  %-10s %s\n", x.name.c_str(), x.description.c_str());
    }
    return 1;
  }

  const Program program = workload_program(*w);
  if (dot) {
    std::printf("%s", cfg_to_dot(program, Cfg::build(program)).c_str());
    return 0;
  }
  std::printf("== %s ==\n%s\n\n", w->name.c_str(), w->description.c_str());
  const AnalyzedProgram ap = analyze_program(program, w->max_steps);

  std::printf("static instructions: %d\n", program.size());
  std::printf("dynamic instructions: %llu\n",
              static_cast<unsigned long long>(ap.profile.total_dynamic));
  std::printf("basic blocks: %d, natural loops: %zu\n", ap.cfg.num_blocks(),
              ap.cfg.loops().size());

  std::printf("\nmaximal candidate sequences (%zu):\n", ap.sites.size());
  for (const SeqSite& site : ap.sites) {
    const WindowView v = full_view(program, site);
    const auto widths = window_input_widths(ap.profile, site, 0,
                                            site.length() - 1);
    const LutEstimate cost = estimate_luts(v.def, widths);
    std::printf(
        "  @%-4d len %d  execs %-8llu  loop %-2d  inputs %d  ~%3d LUTs  |",
        site.positions.front(), site.length(),
        static_cast<unsigned long long>(site.exec_count), site.loop,
        v.num_inputs, cost.luts);
    for (const std::int32_t pos : site.positions) {
      std::printf(" %s",
                  std::string(mnemonic(
                                  program.text[static_cast<std::size_t>(pos)].op))
                      .c_str());
    }
    std::printf("\n");
  }

  std::printf("\n");
  print_selection("selective @2 PFUs", ap, 2);
  std::printf("\n");
  print_selection("selective @4 PFUs", ap, 4);
  return 0;
}
